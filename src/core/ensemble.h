// Ensembling (Sec. 4.4.1): trains e models sequentially, each reweighting the
// quality cost towards points the previous partitions placed badly (Alg. 3,
// AdaBoost-style), and answers queries with the most confident model's
// candidate set (Alg. 4).
#ifndef USP_CORE_ENSEMBLE_H_
#define USP_CORE_ENSEMBLE_H_

#include <memory>
#include <optional>
#include <vector>

#include "core/partition_index.h"
#include "core/partitioner.h"
#include "index/index.h"

namespace usp {

/// How the ensemble combines per-model candidate sets at query time.
enum class EnsembleCombine {
  kBestConfidence,  ///< Alg. 4: candidate set of the most confident model
  kUnion,           ///< union of all models' candidate sets (extension)
};

/// Ensemble hyperparameters.
struct UspEnsembleConfig {
  UspTrainConfig model;          ///< per-model config (seed is varied per model)
  size_t num_models = 3;         ///< e
  /// Additive floor applied to the raw misplaced-neighbor count before the
  /// multiplicative update of Alg. 3b. Without it, any point whose neighbors
  /// are all co-located gets weight exactly 0 forever, which starves later
  /// models of most of the dataset; the paper does not specify a remedy.
  float weight_floor = 0.1f;
  EnsembleCombine combine = EnsembleCombine::kBestConfidence;
};

/// A trained ensemble of USP partitions over one dataset.
class UspEnsemble : public Index {
 public:
  explicit UspEnsemble(UspEnsembleConfig config);

  /// Rehydrates a trained ensemble from deserialized state over external
  /// (possibly mmap'd) base storage. `indexes[j]` must be built over the same
  /// base view with `models[j]` as its scorer.
  UspEnsemble(UspEnsembleConfig config, MatrixView base,
              std::vector<std::unique_ptr<UspPartitioner>> models,
              std::vector<std::unique_ptr<PartitionIndex>> indexes,
              std::vector<float> weights);

  /// Trains all e models sequentially per Algorithm 3. Keeps a view of
  /// `data` for query-time candidate collection; it must outlive the
  /// ensemble.
  void Train(const Matrix& data, const KnnResult& knn_matrix);

  /// Algorithm 4: probe `options.budget` bins in the chosen model(s),
  /// re-rank by exact distance. An options.filter drops disallowed merged
  /// candidates before the rerank (selector pushdown). `options.num_threads`
  /// caps the per-query search sharding (0 = pool default, 1 = serial; model
  /// scoring still uses the pool's GEMM); results are identical at every
  /// setting.
  using Index::SearchBatch;
  BatchSearchResult SearchBatch(const SearchRequest& request) const override;

  /// Radius search: collect candidates exactly as SearchBatch does (the most
  /// confident model's probed bins, or the all-model union), then
  /// range-filter by exact distance. At full budget every model probes every
  /// bin, so the candidate set covers the base and the result is bit-identical
  /// to BruteForceRadius.
  RadiusResult RadiusSearchBatch(const RadiusRequest& request) const override;

  size_t dim() const override { return base_.cols(); }
  size_t size() const override { return base_.rows(); }
  Metric metric() const override { return Metric::kSquaredL2; }
  IndexType type() const override { return IndexType::kUspEnsemble; }
  MatrixView base_view() const override { return base_; }

  /// Planner cost input (index/query_planner.h): summed per-model candidate
  /// volume capped at n (the merge deduplicates overlapping probes).
  size_t EstimateCandidates(size_t budget) const override;

  size_t num_models() const { return models_.size(); }
  const UspPartitioner& model(size_t i) const { return *models_[i]; }
  const PartitionIndex& index(size_t i) const { return *indexes_[i]; }
  const UspEnsembleConfig& config() const { return config_; }

  /// Final per-point weights after training (diagnostics + tests).
  const std::vector<float>& final_weights() const { return weights_; }

  /// Total learnable parameters across the ensemble.
  size_t ParameterCount() const;

 private:
  UspEnsembleConfig config_;
  MatrixView base_;
  std::optional<DistanceComputer> dist_;  ///< exact rerank (squared L2)
  std::vector<std::unique_ptr<UspPartitioner>> models_;
  std::vector<std::unique_ptr<PartitionIndex>> indexes_;
  std::vector<float> weights_;
};

}  // namespace usp

#endif  // USP_CORE_ENSEMBLE_H_
