// The paper's unsupervised partitioning loss (Sec. 4.2.2).
//
// Quality cost U(R): cross-entropy between the model's bin distribution for a
// point and the empirical bin histogram of the point's k' nearest neighbors
// (Eq. 10) — no ground-truth labels needed. Computed per batch with optional
// per-point weights (the ensembling hook of Alg. 3, Eq. 14).
//
// Computational/balance cost S(R): the negated sum of the top-(B/m) softmax
// probabilities per bin column (Eq. 12–13), normalized here to [0, 1] so eta
// is scale-free across batch sizes.
//
// Both terms produce analytic gradients with respect to the logits; softmax
// is folded into the loss for numerical stability. Gradients are verified by
// finite differences in tests/core_loss_test.cc.
#ifndef USP_CORE_LOSS_H_
#define USP_CORE_LOSS_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace usp {

/// Value of one loss evaluation, split by term.
struct LossParts {
  double quality = 0.0;  ///< weighted mean cross-entropy, U(R)
  double balance = 0.0;  ///< 1 - window_sum / B, normalized S(R)
  double total = 0.0;    ///< quality + eta * balance
};

/// Loss configuration.
struct UspLossConfig {
  size_t num_bins = 16;  ///< m
  float eta = 7.0f;      ///< balance weight (paper Table 3 values)
};

/// Builds the quality-cost target distribution B_k'(p) (Eq. 9) from hard bin
/// assignments of each batch point's k' neighbors.
/// `neighbor_bins` is row-major (batch_size x k'); entry values in [0, m).
/// Returns a row-stochastic (batch_size x m) matrix.
Matrix BuildNeighborBinTargets(const std::vector<uint32_t>& neighbor_bins,
                               size_t batch_size, size_t num_neighbors,
                               size_t num_bins);

/// Soft-target variant (design ablation): averages the neighbors' full
/// probability rows instead of their argmax histogram.
/// `neighbor_probs` is ((batch_size * k') x m), grouped by batch point.
Matrix BuildSoftNeighborBinTargets(const Matrix& neighbor_probs,
                                   size_t batch_size, size_t num_neighbors);

/// Multi-label supervised targets (the workload-subsystem ablation,
/// graphpart/neural_lsh.h label_top_m): for batch point i with global id
/// point_ids[i], a normalized histogram over the point's own partition bin
/// plus the bins of its first min(top_m, knn_k) k-NN-graph neighbors —
/// "where do I and my closest graph neighbors live". top_m == 0 reduces
/// exactly to the historical one-hot row over labels[point_ids[i]] (pure
/// supervised CE; knn_indices may then be nullptr). `knn_indices` is the
/// row-major (n x knn_k) neighbor matrix (KnnResult::indices layout); every
/// referenced label must be < num_bins. Rows sum to 1.
Matrix BuildMultiLabelBinTargets(const std::vector<uint32_t>& labels,
                                 const std::vector<uint32_t>& point_ids,
                                 const uint32_t* knn_indices, size_t knn_k,
                                 size_t top_m, size_t num_bins);

/// Evaluates the USP loss on a batch and writes dLoss/dLogits.
///
/// `logits`: (B x m) raw model outputs.
/// `targets`: (B x m) row-stochastic neighbor-bin distributions.
/// `point_weights`: optional per-point quality weights (Eq. 14); nullptr means
///   all-ones. Weights are used as-is (callers normalize to mean 1).
/// `grad_logits`: output, same shape as `logits`; may be pre-sized or empty.
LossParts UspLoss(const Matrix& logits, const Matrix& targets,
                  const std::vector<float>* point_weights,
                  const UspLossConfig& config, Matrix* grad_logits);

/// Exact (non-differentiable) quality cost of Eq. 2 for reporting: the mean
/// number of a point's k' neighbors that land in a different bin.
double ExactQualityCost(const std::vector<uint32_t>& point_bins,
                        const std::vector<uint32_t>& neighbor_bins,
                        size_t num_points, size_t num_neighbors);

}  // namespace usp

#endif  // USP_CORE_LOSS_H_
