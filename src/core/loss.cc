#include "core/loss.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"

namespace usp {

Matrix BuildNeighborBinTargets(const std::vector<uint32_t>& neighbor_bins,
                               size_t batch_size, size_t num_neighbors,
                               size_t num_bins) {
  USP_CHECK(neighbor_bins.size() == batch_size * num_neighbors);
  Matrix targets(batch_size, num_bins);
  const float unit = 1.0f / static_cast<float>(num_neighbors);
  for (size_t i = 0; i < batch_size; ++i) {
    float* row = targets.Row(i);
    for (size_t j = 0; j < num_neighbors; ++j) {
      const uint32_t bin = neighbor_bins[i * num_neighbors + j];
      USP_CHECK(bin < num_bins);
      row[bin] += unit;
    }
  }
  return targets;
}

Matrix BuildSoftNeighborBinTargets(const Matrix& neighbor_probs,
                                   size_t batch_size, size_t num_neighbors) {
  USP_CHECK(neighbor_probs.rows() == batch_size * num_neighbors);
  const size_t m = neighbor_probs.cols();
  Matrix targets(batch_size, m);
  const float unit = 1.0f / static_cast<float>(num_neighbors);
  for (size_t i = 0; i < batch_size; ++i) {
    float* row = targets.Row(i);
    for (size_t j = 0; j < num_neighbors; ++j) {
      const float* src = neighbor_probs.Row(i * num_neighbors + j);
      for (size_t b = 0; b < m; ++b) row[b] += unit * src[b];
    }
  }
  return targets;
}

Matrix BuildMultiLabelBinTargets(const std::vector<uint32_t>& labels,
                                 const std::vector<uint32_t>& point_ids,
                                 const uint32_t* knn_indices, size_t knn_k,
                                 size_t top_m, size_t num_bins) {
  const size_t use = std::min(top_m, knn_k);
  USP_CHECK(use == 0 || knn_indices != nullptr);
  Matrix targets(point_ids.size(), num_bins);
  const float unit = 1.0f / static_cast<float>(1 + use);
  for (size_t i = 0; i < point_ids.size(); ++i) {
    const uint32_t id = point_ids[i];
    USP_CHECK(id < labels.size() && labels[id] < num_bins);
    float* row = targets.Row(i);
    row[labels[id]] += unit;
    for (size_t t = 0; t < use; ++t) {
      const uint32_t nb = knn_indices[id * knn_k + t];
      USP_CHECK(nb < labels.size() && labels[nb] < num_bins);
      row[labels[nb]] += unit;
    }
  }
  return targets;
}

LossParts UspLoss(const Matrix& logits, const Matrix& targets,
                  const std::vector<float>* point_weights,
                  const UspLossConfig& config, Matrix* grad_logits) {
  const size_t batch = logits.rows(), m = logits.cols();
  USP_CHECK(m == config.num_bins);
  USP_CHECK(targets.rows() == batch && targets.cols() == m);
  if (point_weights != nullptr) USP_CHECK(point_weights->size() == batch);
  USP_CHECK(batch > 0);

  // Stable softmax + log-softmax of the logits.
  Matrix log_probs(batch, m);
  LogSoftmaxRows(logits, &log_probs);
  Matrix probs = log_probs.Clone();
  for (size_t i = 0; i < probs.size(); ++i) {
    probs.data()[i] = std::exp(probs.data()[i]);
  }

  if (grad_logits->rows() != batch || grad_logits->cols() != m) {
    *grad_logits = Matrix(batch, m);
  } else {
    grad_logits->Fill(0.0f);
  }

  LossParts parts;
  const float inv_batch = 1.0f / static_cast<float>(batch);

  // ---- Quality term: weighted mean cross-entropy (Eq. 10 / Eq. 14). ----
  // dQuality/dZ_i = w_i * (P_i - T_i) / B  (softmax-CE identity).
  double quality = 0.0;
  for (size_t i = 0; i < batch; ++i) {
    const float w = point_weights ? (*point_weights)[i] : 1.0f;
    const float* t = targets.Row(i);
    const float* lp = log_probs.Row(i);
    const float* p = probs.Row(i);
    float* g = grad_logits->Row(i);
    double ce = 0.0;
    for (size_t j = 0; j < m; ++j) {
      if (t[j] > 0.0f) ce -= static_cast<double>(t[j]) * lp[j];
      g[j] = w * (p[j] - t[j]) * inv_batch;
    }
    quality += w * ce;
  }
  parts.quality = quality * inv_batch;

  // ---- Balance term (Eq. 12-13), normalized to [0, 1]. ----
  // window = top ceil(B/m) probabilities per column; S = 1 - sum(window)/B.
  const size_t window = (batch + m - 1) / m;
  const std::vector<uint8_t> mask = ColumnTopKMask(probs, window);
  const double window_sum = MaskedSum(probs, mask);
  parts.balance = 1.0 - window_sum * inv_batch;

  // Gradient of S w.r.t. probabilities is -1/B on window entries; chain
  // through the row softmax: dS/dZ_ik = P_ik * (G_ik - sum_j G_ij P_ij).
  if (config.eta != 0.0f) {
    for (size_t i = 0; i < batch; ++i) {
      const float* p = probs.Row(i);
      const uint8_t* mrow = mask.data() + i * m;
      float dot = 0.0f;  // sum_j G_ij * P_ij with G_ij = -inv_batch * mask
      for (size_t j = 0; j < m; ++j) {
        if (mrow[j]) dot -= inv_batch * p[j];
      }
      float* g = grad_logits->Row(i);
      for (size_t j = 0; j < m; ++j) {
        const float gij = mrow[j] ? -inv_batch : 0.0f;
        g[j] += config.eta * p[j] * (gij - dot);
      }
    }
  }

  parts.total = parts.quality + config.eta * parts.balance;
  return parts;
}

double ExactQualityCost(const std::vector<uint32_t>& point_bins,
                        const std::vector<uint32_t>& neighbor_bins,
                        size_t num_points, size_t num_neighbors) {
  USP_CHECK(point_bins.size() == num_points);
  USP_CHECK(neighbor_bins.size() == num_points * num_neighbors);
  size_t misplaced = 0;
  for (size_t i = 0; i < num_points; ++i) {
    for (size_t j = 0; j < num_neighbors; ++j) {
      if (neighbor_bins[i * num_neighbors + j] != point_bins[i]) ++misplaced;
    }
  }
  return static_cast<double>(misplaced) / static_cast<double>(num_points);
}

}  // namespace usp
