// The USP model trainer: Algorithm 1 of the paper. Couples partitioning and
// learning-to-search in one unsupervised training loop driven by the loss in
// core/loss.h.
#ifndef USP_CORE_PARTITIONER_H_
#define USP_CORE_PARTITIONER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/bin_scorer.h"
#include "core/loss.h"
#include "knn/brute_force.h"
#include "nn/sequential.h"
#include "tensor/matrix.h"
#include "util/io.h"

namespace usp {

/// Which model architecture learns the partition (Sec. 5.2).
enum class UspModelKind {
  kMlp,                 ///< Linear -> BatchNorm -> ReLU -> Dropout -> Linear
  kLogisticRegression,  ///< single Linear (hyperplane partitions)
};

/// Training hyperparameters. Defaults follow the paper where it states them
/// (k' = 10, hidden 128, dropout 0.1, Adam, ~100 epochs for the MLP).
struct UspTrainConfig {
  size_t num_bins = 16;              ///< m
  float eta = 7.0f;                  ///< loss balance parameter
  UspModelKind model = UspModelKind::kMlp;
  size_t hidden_dim = 128;
  float dropout = 0.1f;
  bool use_batchnorm = true;
  size_t epochs = 40;
  size_t batch_size = 512;           ///< ~4% of a 12.8k dataset (Sec. 4.2.2)
  float learning_rate = 1e-3f;
  bool soft_targets = false;         ///< ablation: expected vs argmax targets
  uint64_t seed = 1;
};

/// Per-epoch training telemetry.
struct EpochStats {
  LossParts loss;        ///< mean over batches
  double balance_ratio;  ///< largest bin / ideal size after the epoch
};

/// An USP partition model: trains unsupervised on a dataset + its k'-NN
/// matrix, then scores bins for arbitrary points (BinScorer).
class UspPartitioner : public BinScorer {
 public:
  explicit UspPartitioner(UspTrainConfig config);

  /// Runs Algorithm 1 steps 2-3: trains the model on `data` using its k'-NN
  /// matrix. `point_weights` are the ensembling weights of Eq. 14 (nullptr =
  /// uniform). Neighbor-bin targets are refreshed from the current model once
  /// per epoch (a stabilized version of the paper's per-batch recomputation;
  /// identical in the limit and far cheaper, see DESIGN.md).
  void Train(const Matrix& data, const KnnResult& knn_matrix,
             const std::vector<float>* point_weights = nullptr);

  // BinScorer: scores are softmax probabilities over bins.
  size_t num_bins() const override { return config_.num_bins; }
  Matrix ScoreBins(MatrixView points) const override;

  /// Learnable parameter count (Table 2).
  size_t ParameterCount() const { return model_.ParameterCount(); }

  const std::vector<EpochStats>& epoch_stats() const { return epoch_stats_; }
  const UspTrainConfig& config() const { return config_; }

  /// Persists the trained model (config + every state tensor, including
  /// batch-norm running statistics) so the offline phase can run once and the
  /// online phase can load the partition anywhere. Binary, versioned.
  Status Save(const std::string& path) const;

  /// Restores a partitioner saved with Save(). The returned object scores and
  /// assigns bins identically to the original.
  static StatusOr<UspPartitioner> Load(const std::string& path);

  /// Same record format over an arbitrary byte stream, so the model can live
  /// in a standalone file or embedded as an index-container section
  /// (index/serialize.h). `context` names the destination in error messages.
  Status SaveTo(Writer* writer, const std::string& context) const;
  static StatusOr<UspPartitioner> LoadFrom(Reader* reader,
                                           const std::string& context);

 private:
  /// Instantiates the configured architecture for `input_dim` features.
  void BuildModel(size_t input_dim);

  UspTrainConfig config_;
  size_t input_dim_ = 0;
  mutable Sequential model_;  // Forward(eval) mutates layer caches only
  std::vector<EpochStats> epoch_stats_;
  bool trained_ = false;
};

}  // namespace usp

#endif  // USP_CORE_PARTITIONER_H_
