#include "core/bin_scorer.h"

#include <algorithm>

#include "tensor/ops.h"

namespace usp {

std::vector<uint32_t> BinScorer::AssignBins(MatrixView points) const {
  return ArgmaxRows(ScoreBins(points));
}

std::vector<size_t> BinHistogram(const std::vector<uint32_t>& assignments,
                                 size_t num_bins) {
  std::vector<size_t> histogram(num_bins, 0);
  for (uint32_t bin : assignments) {
    USP_CHECK(bin < num_bins);
    ++histogram[bin];
  }
  return histogram;
}

double BalanceRatio(const std::vector<uint32_t>& assignments, size_t num_bins) {
  if (assignments.empty()) return 1.0;
  const auto histogram = BinHistogram(assignments, num_bins);
  const size_t largest = *std::max_element(histogram.begin(), histogram.end());
  const double ideal =
      static_cast<double>(assignments.size()) / static_cast<double>(num_bins);
  return static_cast<double>(largest) / ideal;
}

}  // namespace usp
