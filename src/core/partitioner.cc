#include "core/partitioner.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "nn/model_factory.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace usp {

UspPartitioner::UspPartitioner(UspTrainConfig config)
    : config_(std::move(config)) {
  USP_CHECK(config_.num_bins > 1);
}

Matrix UspPartitioner::ScoreBins(MatrixView points) const {
  Matrix logits = model_.Forward(points, /*training=*/false);
  SoftmaxRows(&logits);
  return logits;
}

void UspPartitioner::BuildModel(size_t input_dim) {
  input_dim_ = input_dim;
  if (config_.model == UspModelKind::kMlp) {
    MlpConfig mc;
    mc.input_dim = input_dim;
    mc.hidden_dim = config_.hidden_dim;
    mc.num_bins = config_.num_bins;
    mc.dropout_rate = config_.dropout;
    mc.use_batchnorm = config_.use_batchnorm;
    mc.seed = config_.seed;
    model_ = BuildMlp(mc);
  } else {
    model_ = BuildLogisticRegression(input_dim, config_.num_bins, config_.seed);
  }
}

namespace {
constexpr uint32_t kModelMagic = 0x5553504DU;  // "USPM"
constexpr uint32_t kModelVersion = 1;
}  // namespace

Status UspPartitioner::Save(const std::string& path) const {
  if (!trained_) {
    return Status::FailedPrecondition("partitioner not trained");
  }
  FileWriter writer(path);
  if (!writer.ok()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  Status status = SaveTo(&writer, path);
  if (!status.ok()) return status;
  if (!writer.Close()) return Status::IoError("short write to " + path);
  return Status::Ok();
}

Status UspPartitioner::SaveTo(Writer* writer,
                              const std::string& context) const {
  if (!trained_) {
    return Status::FailedPrecondition("partitioner not trained");
  }
  const uint64_t header[] = {
      kModelMagic,
      kModelVersion,
      static_cast<uint64_t>(config_.num_bins),
      static_cast<uint64_t>(config_.model == UspModelKind::kMlp ? 0 : 1),
      static_cast<uint64_t>(config_.hidden_dim),
      static_cast<uint64_t>(config_.use_batchnorm ? 1 : 0),
      static_cast<uint64_t>(input_dim_),
      config_.seed,
  };
  if (!writer->Write(header, sizeof(header)) ||
      !writer->WritePod(config_.eta) || !writer->WritePod(config_.dropout)) {
    return Status::IoError("short write to " + context);
  }

  std::vector<Matrix*> tensors;
  const_cast<Sequential&>(model_).CollectStateTensors(&tensors);
  const uint64_t tensor_count = tensors.size();
  if (!writer->WritePod(tensor_count)) {
    return Status::IoError("short write to " + context);
  }
  for (const Matrix* tensor : tensors) {
    const uint64_t rows = tensor->rows(), cols = tensor->cols();
    if (!writer->WritePod(rows) || !writer->WritePod(cols) ||
        !writer->Write(tensor->data(), tensor->size() * sizeof(float))) {
      return Status::IoError("short write to " + context);
    }
  }
  return Status::Ok();
}

StatusOr<UspPartitioner> UspPartitioner::Load(const std::string& path) {
  FileReader reader(path);
  if (!reader.ok()) return Status::IoError("cannot open " + path);
  return LoadFrom(&reader, path);
}

StatusOr<UspPartitioner> UspPartitioner::LoadFrom(Reader* reader,
                                                  const std::string& context) {
  uint64_t header[8];
  if (!reader->Read(header, sizeof(header))) {
    return Status::IoError("truncated model file " + context);
  }
  if (header[0] != kModelMagic) {
    return Status::InvalidArgument(context + " is not a USP model file");
  }
  if (header[1] != kModelVersion) {
    return Status::InvalidArgument("unsupported model version in " + context);
  }
  UspTrainConfig config;
  config.num_bins = static_cast<size_t>(header[2]);
  config.model = header[3] == 0 ? UspModelKind::kMlp
                                : UspModelKind::kLogisticRegression;
  config.hidden_dim = static_cast<size_t>(header[4]);
  config.use_batchnorm = header[5] != 0;
  const size_t input_dim = static_cast<size_t>(header[6]);
  config.seed = header[7];
  // Plausibility bounds before BuildModel allocates layer tensors: a corrupt
  // header must surface as a Status, never a bad_alloc.
  if (config.num_bins < 2 || config.num_bins > (1u << 20) ||
      config.hidden_dim > (1u << 20) || input_dim == 0 ||
      input_dim > (1u << 24)) {
    return Status::InvalidArgument("corrupt model header in " + context);
  }
  if (!reader->ReadPod(&config.eta) || !reader->ReadPod(&config.dropout)) {
    return Status::IoError("truncated model file " + context);
  }

  UspPartitioner partitioner(config);
  partitioner.BuildModel(input_dim);

  std::vector<Matrix*> tensors;
  partitioner.model_.CollectStateTensors(&tensors);
  uint64_t tensor_count = 0;
  if (!reader->ReadPod(&tensor_count) || tensor_count != tensors.size()) {
    return Status::InvalidArgument("tensor count mismatch in " + context);
  }
  for (Matrix* tensor : tensors) {
    uint64_t rows = 0, cols = 0;
    if (!reader->ReadPod(&rows) || !reader->ReadPod(&cols) ||
        rows != tensor->rows() || cols != tensor->cols() ||
        !reader->Read(tensor->data(), tensor->size() * sizeof(float))) {
      return Status::IoError("bad tensor record in " + context);
    }
  }
  partitioner.trained_ = true;
  return partitioner;
}

void UspPartitioner::Train(const Matrix& data, const KnnResult& knn_matrix,
                           const std::vector<float>* point_weights) {
  const size_t n = data.rows(), d = data.cols();
  USP_CHECK(n > 0);
  USP_CHECK(knn_matrix.indices.size() == n * knn_matrix.k);
  if (point_weights != nullptr) USP_CHECK(point_weights->size() == n);
  const size_t kp = knn_matrix.k;  // k'
  const size_t m = config_.num_bins;

  BuildModel(d);

  Adam optimizer(config_.learning_rate);
  std::vector<Matrix*> params, grads;
  model_.CollectParameters(&params, &grads);
  optimizer.Attach(params, grads);

  Rng rng(config_.seed ^ 0x5157AA11ULL);
  const size_t batch_size = std::min(config_.batch_size, n);
  const size_t batches_per_epoch = std::max<size_t>(1, n / batch_size);

  epoch_stats_.clear();
  UspLossConfig loss_config{m, config_.eta};
  Matrix grad_logits;
  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);

  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    // Refresh neighbor-bin targets from the current model (eval mode, no
    // dropout) once per epoch. `all_probs` is only materialized for the soft
    // target ablation; the default path keeps argmax assignments.
    Matrix all_scores = ScoreBins(data);
    std::vector<uint32_t> all_bins = ArgmaxRows(all_scores);

    rng.Shuffle(&order);
    LossParts epoch_loss;
    size_t batches = 0;

    for (size_t b = 0; b < batches_per_epoch; ++b) {
      const size_t begin = b * batch_size;
      const size_t end = std::min(n, begin + batch_size);
      const size_t bsz = end - begin;
      if (bsz < 2) continue;
      std::vector<uint32_t> batch_ids(order.begin() + begin,
                                      order.begin() + end);

      Matrix batch = data.GatherRows(batch_ids);
      std::vector<float> weights;
      if (point_weights != nullptr) {
        weights.reserve(bsz);
        for (uint32_t id : batch_ids) weights.push_back((*point_weights)[id]);
      }

      // Targets from the neighbors' current assignments (Eq. 7-9).
      Matrix targets;
      if (config_.soft_targets) {
        Matrix neighbor_probs(bsz * kp, m);
        for (size_t i = 0; i < bsz; ++i) {
          const uint32_t* nbrs = knn_matrix.Row(batch_ids[i]);
          for (size_t j = 0; j < kp; ++j) {
            const float* src = all_scores.Row(nbrs[j]);
            std::copy(src, src + m, neighbor_probs.Row(i * kp + j));
          }
        }
        targets = BuildSoftNeighborBinTargets(neighbor_probs, bsz, kp);
      } else {
        std::vector<uint32_t> neighbor_bins(bsz * kp);
        for (size_t i = 0; i < bsz; ++i) {
          const uint32_t* nbrs = knn_matrix.Row(batch_ids[i]);
          for (size_t j = 0; j < kp; ++j) {
            neighbor_bins[i * kp + j] = all_bins[nbrs[j]];
          }
        }
        targets = BuildNeighborBinTargets(neighbor_bins, bsz, kp, m);
      }

      Matrix logits = model_.Forward(batch, /*training=*/true);
      const LossParts parts =
          UspLoss(logits, targets, weights.empty() ? nullptr : &weights,
                  loss_config, &grad_logits);
      optimizer.ZeroGrad();
      model_.Backward(grad_logits);
      optimizer.Step();

      epoch_loss.quality += parts.quality;
      epoch_loss.balance += parts.balance;
      epoch_loss.total += parts.total;
      ++batches;
    }

    if (batches > 0) {
      epoch_loss.quality /= static_cast<double>(batches);
      epoch_loss.balance /= static_cast<double>(batches);
      epoch_loss.total /= static_cast<double>(batches);
    }
    EpochStats stats;
    stats.loss = epoch_loss;
    stats.balance_ratio = BalanceRatio(all_bins, m);
    epoch_stats_.push_back(stats);
  }
  trained_ = true;
}

}  // namespace usp
