#include "core/ensemble.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "index/query_planner.h"
#include "knn/brute_force.h"
#include "util/thread_pool.h"

namespace usp {

UspEnsemble::UspEnsemble(UspEnsembleConfig config)
    : config_(std::move(config)) {
  USP_CHECK(config_.num_models >= 1);
}

UspEnsemble::UspEnsemble(UspEnsembleConfig config, MatrixView base,
                         std::vector<std::unique_ptr<UspPartitioner>> models,
                         std::vector<std::unique_ptr<PartitionIndex>> indexes,
                         std::vector<float> weights)
    : config_(std::move(config)),
      base_(base),
      dist_(DistanceComputer(base, Metric::kSquaredL2)),
      models_(std::move(models)),
      indexes_(std::move(indexes)),
      weights_(std::move(weights)) {
  USP_CHECK(!models_.empty() && models_.size() == indexes_.size());
}

void UspEnsemble::Train(const Matrix& data, const KnnResult& knn_matrix) {
  base_ = MatrixView(data);
  dist_.emplace(base_, Metric::kSquaredL2);
  const size_t n = data.rows();
  const size_t kp = knn_matrix.k;
  models_.clear();
  indexes_.clear();
  weights_.assign(n, 1.0f);  // W_1: equal weights (Alg. 3 input)

  for (size_t j = 0; j < config_.num_models; ++j) {
    UspTrainConfig model_config = config_.model;
    model_config.seed = config_.model.seed + 0x9E37 * (j + 1);
    auto model = std::make_unique<UspPartitioner>(model_config);
    model->Train(data, knn_matrix, &weights_);
    auto index = std::make_unique<PartitionIndex>(&data, model.get());

    if (j + 1 < config_.num_models) {
      // Alg. 3b: raw weight = number of the point's k' neighbors placed in a
      // different bin by this model; multiply into the running weights so only
      // points *every* previous model failed keep high weight.
      const std::vector<uint32_t>& bins = index->assignments();
      double sum = 0.0;
      for (size_t i = 0; i < n; ++i) {
        uint32_t misplaced = 0;
        const uint32_t* nbrs = knn_matrix.Row(i);
        for (size_t t = 0; t < kp; ++t) {
          if (bins[nbrs[t]] != bins[i]) ++misplaced;
        }
        weights_[i] *= static_cast<float>(misplaced) + config_.weight_floor;
        sum += weights_[i];
      }
      // Normalize to mean 1 so the quality term keeps the same scale as the
      // balance term across ensemble stages.
      const float scale =
          sum > 0.0 ? static_cast<float>(n / sum) : 1.0f;
      for (auto& w : weights_) w *= scale;
    }

    models_.push_back(std::move(model));
    indexes_.push_back(std::move(index));
  }
}

size_t UspEnsemble::EstimateCandidates(size_t budget) const {
  size_t total = 0;
  for (const auto& index : indexes_) {
    total += index->EstimateCandidates(budget);
    if (total >= size()) return size();
  }
  return total;
}

BatchSearchResult UspEnsemble::SearchBatch(const SearchRequest& request) const {
  USP_CHECK(!base_.empty() && !models_.empty());
  // Planner hook: sparse selectors skip the whole score/merge/rerank pipeline
  // in favor of an allowed-set scan (index/query_planner.h).
  if (auto planned = MaybeReroute(*this, request)) return std::move(*planned);
  const MatrixView queries = request.queries;
  const SearchOptions& options = request.options;
  const size_t num_probes = options.budget;
  const size_t nq = queries.rows();
  const size_t e = models_.size();

  // Score queries on every model once.
  std::vector<Matrix> scores;
  scores.reserve(e);
  for (const auto& model : models_) {
    scores.push_back(model->ScoreBins(queries));
  }

  BatchSearchResult result;
  result.Prepare(nq, options);

  ParallelFor(nq, 8, options.num_threads, [&](size_t begin, size_t end,
                                              size_t) {
    std::vector<uint32_t> candidates, merged;
    for (size_t q = begin; q < end; ++q) {
      merged.clear();
      size_t probes = 0;
      if (config_.combine == EnsembleCombine::kBestConfidence) {
        // Alg. 4 steps 3-4: confidence = the model's top bin probability.
        size_t best_model = 0;
        float best_conf = -1.0f;
        for (size_t j = 0; j < e; ++j) {
          const float* row = scores[j].Row(q);
          const float conf =
              *std::max_element(row, row + scores[j].cols());
          if (conf > best_conf) {
            best_conf = conf;
            best_model = j;
          }
        }
        indexes_[best_model]->CollectCandidates(scores[best_model].Row(q),
                                                num_probes, &merged);
        probes = std::min(num_probes, indexes_[best_model]->num_bins());
      } else {
        std::unordered_set<uint32_t> seen;
        for (size_t j = 0; j < e; ++j) {
          indexes_[j]->CollectCandidates(scores[j].Row(q), num_probes,
                                         &candidates);
          probes += std::min(num_probes, indexes_[j]->num_bins());
          for (uint32_t id : candidates) {
            if (seen.insert(id).second) merged.push_back(id);
          }
        }
      }
      RerankCounts counts;
      result.SetRow(q, RerankCandidatesScored(*dist_, queries.Row(q), merged,
                                              options.k, options.filter,
                                              &counts));
      // `merged` is already deduplicated, so scored == merged.size() minus
      // what the selector dropped.
      result.candidate_counts[q] = counts.scored;
      if (result.stats) {
        result.stats->candidates_scored[q] = counts.scored;
        result.stats->bins_probed[q] = static_cast<uint32_t>(probes);
        result.stats->filtered_out[q] = counts.filtered_out;
      }
    }
  });
  return result;
}

RadiusResult UspEnsemble::RadiusSearchBatch(const RadiusRequest& request) const {
  USP_CHECK(!base_.empty() && !models_.empty());
  const MatrixView queries = request.queries;
  const size_t num_probes = request.options.budget;
  const size_t e = models_.size();

  std::vector<Matrix> scores;
  scores.reserve(e);
  for (const auto& model : models_) {
    scores.push_back(model->ScoreBins(queries));
  }

  return CollectRadiusRows(
      queries.rows(), request.options, [&](size_t q, RadiusResult* result) {
        std::vector<uint32_t> candidates, merged;
        size_t probes = 0;
        if (config_.combine == EnsembleCombine::kBestConfidence) {
          size_t best_model = 0;
          float best_conf = -1.0f;
          for (size_t j = 0; j < e; ++j) {
            const float* row = scores[j].Row(q);
            const float conf = *std::max_element(row, row + scores[j].cols());
            if (conf > best_conf) {
              best_conf = conf;
              best_model = j;
            }
          }
          indexes_[best_model]->CollectCandidates(scores[best_model].Row(q),
                                                  num_probes, &merged);
          probes = std::min(num_probes, indexes_[best_model]->num_bins());
        } else {
          // Overlapping per-model probes may repeat ids;
          // RangeFilterCandidates dedupes before scoring.
          for (size_t j = 0; j < e; ++j) {
            indexes_[j]->CollectCandidates(scores[j].Row(q), num_probes,
                                           &candidates);
            probes += std::min(num_probes, indexes_[j]->num_bins());
            merged.insert(merged.end(), candidates.begin(), candidates.end());
          }
        }
        RadiusRowCounts counts;
        auto hits = RangeFilterCandidates(*dist_, queries.Row(q), &merged,
                                          request.radius,
                                          request.options.filter, &counts);
        result->candidate_counts[q] = counts.scored;
        if (result->stats) {
          result->stats->candidates_scored[q] = counts.scored;
          result->stats->bins_probed[q] = static_cast<uint32_t>(probes);
          result->stats->filtered_out[q] = counts.filtered_out;
        }
        return hits;
      });
}

size_t UspEnsemble::ParameterCount() const {
  size_t total = 0;
  for (const auto& model : models_) total += model->ParameterCount();
  return total;
}

}  // namespace usp
