#include "core/hierarchical.h"

#include <algorithm>

#include "knn/brute_force.h"
#include "tensor/ops.h"

namespace usp {

HierarchicalUspPartitioner::HierarchicalUspPartitioner(
    HierarchicalConfig config)
    : config_(std::move(config)) {
  USP_CHECK(!config_.fanouts.empty());
  total_bins_ = 1;
  for (size_t f : config_.fanouts) {
    USP_CHECK(f > 1);
    total_bins_ *= f;
  }
}

size_t HierarchicalUspPartitioner::SubtreeBins(size_t level) const {
  size_t bins = 1;
  for (size_t l = level; l < config_.fanouts.size(); ++l) {
    bins *= config_.fanouts[l];
  }
  return bins;
}

void HierarchicalUspPartitioner::Train(const Matrix& data,
                                       const KnnResult& knn_matrix) {
  root_ = Node{};
  std::vector<uint32_t> all(data.rows());
  for (size_t i = 0; i < data.rows(); ++i) all[i] = static_cast<uint32_t>(i);
  TrainNode(&root_, data, all, knn_matrix, 0);
}

void HierarchicalUspPartitioner::TrainNode(
    Node* node, const Matrix& data, const std::vector<uint32_t>& subset_ids,
    const KnnResult& global_knn, size_t level) {
  // Exact local k-NN is affordable for small subsets; larger ones reuse the
  // global lists filtered to the subset (see FilterKnnToSubset).
  constexpr size_t kExactKnnThreshold = 2048;
  const size_t fanout = config_.fanouts[level];
  UspTrainConfig cfg = config_.model;
  cfg.num_bins = fanout;
  cfg.seed = config_.model.seed + 0x51ED * (level + 1) + subset_ids.size();
  node->model = std::make_unique<UspPartitioner>(cfg);

  Matrix subset = data.GatherRows(subset_ids);
  KnnResult local_knn;
  if (level == 0) {
    local_knn = KnnResult{global_knn.k, global_knn.indices,
                          global_knn.distances};
  } else if (subset.rows() <= kExactKnnThreshold) {
    local_knn = BuildKnnMatrix(
        subset, std::max<size_t>(1, std::min(global_knn.k, subset.rows() - 1)));
  } else {
    local_knn = FilterKnnToSubset(global_knn, subset_ids);
  }
  node->model->Train(subset, local_knn);

  if (level + 1 >= config_.fanouts.size()) return;
  const std::vector<uint32_t> bins = node->model->AssignBins(subset);
  node->children.resize(fanout);
  for (size_t c = 0; c < fanout; ++c) {
    node->children[c] = std::make_unique<Node>();
    std::vector<uint32_t> child_ids;
    for (size_t i = 0; i < subset.rows(); ++i) {
      if (bins[i] == c) child_ids.push_back(subset_ids[i]);
    }
    if (child_ids.size() < config_.min_points_per_child) continue;
    TrainNode(node->children[c].get(), data, child_ids, global_knn, level + 1);
  }
}

Matrix HierarchicalUspPartitioner::ScoreBins(MatrixView points) const {
  USP_CHECK(root_.model != nullptr);
  Matrix out(points.rows(), total_bins_);
  std::vector<float> ones(points.rows(), 1.0f);
  ScoreNode(root_, points, ones, 0, 0, &out);
  return out;
}

void HierarchicalUspPartitioner::ScoreNode(
    const Node& node, MatrixView points,
    const std::vector<float>& parent_scale, size_t level, size_t col_offset,
    Matrix* out) const {
  const size_t subtree = SubtreeBins(level);
  if (node.model == nullptr) {
    // Trivial node: all probability mass on its first leaf bin.
    for (size_t i = 0; i < points.rows(); ++i) {
      (*out)(i, col_offset) = parent_scale[i];
    }
    return;
  }
  const Matrix probs = node.model->ScoreBins(points);
  const size_t fanout = config_.fanouts[level];
  const size_t child_bins = subtree / fanout;
  if (node.children.empty()) {
    for (size_t i = 0; i < points.rows(); ++i) {
      float* row = out->Row(i);
      for (size_t c = 0; c < fanout; ++c) {
        row[col_offset + c] = parent_scale[i] * probs(i, c);
      }
    }
    return;
  }
  std::vector<float> child_scale(points.rows());
  for (size_t c = 0; c < fanout; ++c) {
    for (size_t i = 0; i < points.rows(); ++i) {
      child_scale[i] = parent_scale[i] * probs(i, c);
    }
    ScoreNode(*node.children[c], points, child_scale, level + 1,
              col_offset + c * child_bins, out);
  }
}

size_t HierarchicalUspPartitioner::ParameterCount() const {
  return CountParams(root_);
}

size_t HierarchicalUspPartitioner::CountParams(const Node& node) const {
  size_t total = node.model ? node.model->ParameterCount() : 0;
  for (const auto& child : node.children) {
    if (child) total += CountParams(*child);
  }
  return total;
}

size_t HierarchicalUspPartitioner::NumModels() const {
  return CountModels(root_);
}

size_t HierarchicalUspPartitioner::CountModels(const Node& node) const {
  size_t total = node.model ? 1 : 0;
  for (const auto& child : node.children) {
    if (child) total += CountModels(*child);
  }
  return total;
}

}  // namespace usp
