// Algorithm 2 of the paper: the online phase. Wraps any BinScorer and a base
// dataset into an ANN index: probe the m' highest-scored bins, gather their
// points through the lookup table built in the offline phase, and re-rank the
// candidate set by exact distance.
#ifndef USP_CORE_PARTITION_INDEX_H_
#define USP_CORE_PARTITION_INDEX_H_

#include <cstdint>
#include <vector>

#include "core/bin_scorer.h"
#include "dist/distance_computer.h"
#include "dist/metric.h"
#include "index/index.h"
#include "tensor/matrix.h"

namespace usp {

/// Immutable ANN index: bin lookup table (Alg. 1 step 3) + multi-probe search
/// (Alg. 2). Holds a view of the base matrix (heap or mmap'd storage) and a
/// pointer to the scorer; both must outlive the index.
class PartitionIndex : public Index {
 public:
  /// Builds the lookup table by assigning every base point to its argmax bin.
  /// `metric` selects the exact-distance metric of the final rerank stage
  /// (dist/metric.h); the default keeps the historical squared-L2 behavior
  /// bit-compatible. Bin-scoring semantics stay whatever the scorer encodes,
  /// so a metric-consistent index pairs this with a matching scorer (e.g.
  /// KMeansPartitioner built with the same metric).
  PartitionIndex(const Matrix* base, const BinScorer* scorer,
                 Metric metric = Metric::kSquaredL2);

  /// Builds from precomputed assignments (used by ensembles, IVF residency,
  /// and tests).
  PartitionIndex(const Matrix* base, const BinScorer* scorer,
                 std::vector<uint32_t> assignments,
                 Metric metric = Metric::kSquaredL2);

  /// Rehydrates from deserialized state over external (possibly mmap'd)
  /// storage; assignments must be the ones the index was saved with.
  PartitionIndex(MatrixView base, const BinScorer* scorer,
                 std::vector<uint32_t> assignments, Metric metric);

  /// Scores all queries once; reuse across different probe counts.
  Matrix ScoreQueries(MatrixView queries) const;

  /// k-NN search probing the `options.budget` best bins per query. An
  /// options.filter drops disallowed candidates before the exact rerank
  /// (selector pushdown: at full budget the result is brute force over the
  /// allowed subset). The per-query probe/rerank stage is sharded over the
  /// global thread pool; `options.num_threads` caps that sharding (0 = pool
  /// default, 1 = that stage runs serially on the calling thread). The
  /// bin-scoring stage (ScoreQueries) always uses the pool's data-parallel
  /// GEMM regardless of the cap. Results are bit-identical at every thread
  /// count: each query's work is independent and writes only its own output
  /// rows.
  using Index::SearchBatch;
  BatchSearchResult SearchBatch(const SearchRequest& request) const override;

  /// Radius search: gather candidates from the `options.budget` best bins,
  /// then range-filter them by exact distance (workload/radius.h). At full
  /// budget every bin is probed, so the result is bit-identical to
  /// BruteForceRadius over the allowed base.
  RadiusResult RadiusSearchBatch(const RadiusRequest& request) const override;

  /// Same but with externally computed scores (one scoring, many sweeps).
  BatchSearchResult SearchBatchWithScores(MatrixView queries,
                                          const Matrix& scores,
                                          const SearchOptions& options) const;

  /// Positional convenience over the options form (historical signature).
  BatchSearchResult SearchBatchWithScores(MatrixView queries,
                                          const Matrix& scores, size_t k,
                                          size_t num_probes,
                                          size_t num_threads = 0) const;

  /// Collects the candidate ids for one query given its bin scores.
  void CollectCandidates(const float* scores, size_t num_probes,
                         std::vector<uint32_t>* candidates) const;

  /// Planner cost input (index/query_planner.h): balanced-bin candidate
  /// volume, ceil(n * min(budget, bins) / bins).
  size_t EstimateCandidates(size_t budget) const override;

  size_t num_bins() const { return buckets_.size(); }
  size_t dim() const override { return base_.cols(); }
  size_t size() const override { return base_.rows(); }
  Metric metric() const override { return dist_.metric(); }
  IndexType type() const override { return IndexType::kPartition; }
  MatrixView base_view() const override { return base_; }
  MatrixView base() const { return base_; }
  const BinScorer* scorer() const { return scorer_; }
  const std::vector<std::vector<uint32_t>>& buckets() const { return buckets_; }
  const std::vector<uint32_t>& assignments() const { return assignments_; }

 private:
  MatrixView base_;
  const BinScorer* scorer_;
  DistanceComputer dist_;  ///< exact rerank under the index metric
  std::vector<uint32_t> assignments_;
  std::vector<std::vector<uint32_t>> buckets_;  ///< the paper's lookup table
};

/// Fraction of true neighbors recovered (Eq. 1): |returned ∩ truth| / k,
/// averaged over queries. `truth_row(q)` must hold >= k entries.
double KnnAccuracy(const BatchSearchResult& result,
                   const std::vector<uint32_t>& truth, size_t truth_k);

}  // namespace usp

#endif  // USP_CORE_PARTITION_INDEX_H_
