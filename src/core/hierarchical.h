// Hierarchical partitioning (Sec. 4.4.2): recursively split the dataset with
// a tree of small models. A query's probability for leaf bin (c1, c2, ...) is
// the product of per-level probabilities down the tree, so the whole tree
// behaves as one BinScorer over prod(fanouts) bins.
#ifndef USP_CORE_HIERARCHICAL_H_
#define USP_CORE_HIERARCHICAL_H_

#include <memory>
#include <vector>

#include "core/bin_scorer.h"
#include "core/partitioner.h"

namespace usp {

/// Configuration: `fanouts` lists m_1, m_2, ..., m_l (paper: {16, 16} for 256
/// bins). `model` seeds/configures every node; each node's num_bins is
/// overridden by its level's fanout.
struct HierarchicalConfig {
  std::vector<size_t> fanouts = {16, 16};
  UspTrainConfig model;
  /// Subsets smaller than this train no child model; the subtree becomes a
  /// single-bin pass-through so leaf numbering stays dense.
  size_t min_points_per_child = 64;
};

/// A tree of UspPartitioners acting as one flat partition with
/// prod(fanouts) bins.
class HierarchicalUspPartitioner : public BinScorer {
 public:
  explicit HierarchicalUspPartitioner(HierarchicalConfig config);

  /// Trains the root on the full dataset using the provided global k'-NN
  /// matrix, then recursively trains children on each bin's points. Child
  /// neighborhoods are the global lists filtered to the subset (cheap and
  /// nearly lossless, since the parent's objective co-locates neighbors);
  /// small subsets fall back to exact local k-NN.
  void Train(const Matrix& data, const KnnResult& knn_matrix);

  size_t num_bins() const override { return total_bins_; }
  Matrix ScoreBins(MatrixView points) const override;

  /// Total learnable parameters across all node models (Table 2/3 context).
  size_t ParameterCount() const;

  /// Number of trained node models in the tree.
  size_t NumModels() const;

 private:
  struct Node {
    std::unique_ptr<UspPartitioner> model;  // null => trivial single-bin node
    std::vector<std::unique_ptr<Node>> children;
  };

  void TrainNode(Node* node, const Matrix& data,
                 const std::vector<uint32_t>& subset_ids,
                 const KnnResult& global_knn, size_t level);
  // Writes the (points x bins_at_subtree) score block for `node` into `out`
  // starting at column `col_offset`, scaled by `parent_scale` per point.
  void ScoreNode(const Node& node, MatrixView points,
                 const std::vector<float>& parent_scale, size_t level,
                 size_t col_offset, Matrix* out) const;
  size_t SubtreeBins(size_t level) const;
  size_t CountParams(const Node& node) const;
  size_t CountModels(const Node& node) const;

  HierarchicalConfig config_;
  size_t total_bins_ = 0;
  Node root_;
};

}  // namespace usp

#endif  // USP_CORE_HIERARCHICAL_H_
