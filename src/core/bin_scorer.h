// Common interface for every space-partitioning method in the repository.
// A partitioner maps points to scores over m bins; the index layer
// (core/partition_index.h) turns any BinScorer into an ANN index, so USP,
// K-means, LSH, trees and Neural LSH are all evaluated through one code path.
#ifndef USP_CORE_BIN_SCORER_H_
#define USP_CORE_BIN_SCORER_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace usp {

/// Scores bins for query points; higher score = more likely bin (Alg. 2
/// probes bins in descending score order).
class BinScorer {
 public:
  virtual ~BinScorer() = default;

  /// Number of bins m in the partition.
  virtual size_t num_bins() const = 0;

  /// Returns a (num_points x num_bins) score matrix. `points` is a
  /// non-owning view (a Matrix converts implicitly), so the serving layer can
  /// score query batches — including zero-copy single-query wraps — without
  /// copying them into an owned Matrix first.
  virtual Matrix ScoreBins(MatrixView points) const = 0;

  /// Hard assignment: argmax score per point. R(p) in the paper.
  std::vector<uint32_t> AssignBins(MatrixView points) const;
};

/// Histogram of assignments over `num_bins` bins (balance diagnostics).
std::vector<size_t> BinHistogram(const std::vector<uint32_t>& assignments,
                                 size_t num_bins);

/// Largest-bin / ideal-bin ratio; 1.0 is perfectly balanced.
double BalanceRatio(const std::vector<uint32_t>& assignments, size_t num_bins);

}  // namespace usp

#endif  // USP_CORE_BIN_SCORER_H_
