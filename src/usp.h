// Umbrella header for the USP library: everything a downstream application
// needs to build, query, and evaluate unsupervised space-partitioning ANN
// indexes. Individual module headers remain includable on their own.
#ifndef USP_USP_H_
#define USP_USP_H_

// Distance kernels and metrics (runtime-dispatched SIMD), float and
// quantized (pq4 fast-scan, int8 sq8).
#include "dist/distance_computer.h"
#include "dist/distance_kernels.h"
#include "dist/metric.h"
#include "dist/quant_kernels.h"

// Unified index interface (SearchRequest/SearchOptions, predicate-filtered
// search via IdSelector, selectivity-aware query planning) + versioned
// serialization (train once, serve many) + algorithm='auto' index factory.
#include "index/auto_index.h"
#include "index/container.h"
#include "index/id_selector.h"
#include "index/index.h"
#include "index/query_planner.h"
#include "index/serialize.h"

// Mutable serving layer (LSM-style segments, tombstone deletes, compaction).
#include "serve/dynamic_index.h"

// Scale-out serving: sharded scatter-gather + async micro-batching front-end.
#include "serve/batching_executor.h"
#include "serve/sharded_index.h"

// Core contribution (EDBT 2023 paper).
#include "core/bin_scorer.h"
#include "core/ensemble.h"
#include "core/hierarchical.h"
#include "core/loss.h"
#include "core/partition_index.h"
#include "core/partitioner.h"

// Data: generators, IO, workloads with ground truth.
#include "dataset/io.h"
#include "dataset/synthetic.h"
#include "dataset/workload.h"

// Exact search substrate.
#include "knn/brute_force.h"

// Workloads beyond top-k: radius (range) search over every index type
// (workload/radius.h rides in via index/index.h) and fast k-NN-graph
// construction (exact symmetric tiles, index-accelerated approximate,
// out-of-core streaming).
#include "workload/knn_graph.h"

// Baselines and companion indexes.
#include "baselines/cross_polytope_lsh.h"
#include "baselines/kmeans.h"
#include "baselines/partition_tree.h"
#include "graphpart/neural_lsh.h"
#include "graphpart/regression_lsh.h"
#include "hnsw/hnsw.h"
#include "ivf/ivf.h"
#include "quant/fastscan.h"
#include "quant/scann_index.h"
#include "quant/sq8_index.h"

// Clustering mode (Table 5).
#include "cluster/dbscan.h"
#include "cluster/metrics.h"
#include "cluster/spectral.h"

// Evaluation harness.
#include "eval/sweep.h"

#endif  // USP_USP_H_
