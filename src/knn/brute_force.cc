#include "knn/brute_force.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "dist/distance_kernels.h"
#include "index/index.h"  // kInvalidId: the filtered-scan padding sentinel
#include "knn/top_k.h"
#include "tensor/ops.h"
#include "util/thread_pool.h"

namespace usp {

namespace {
constexpr size_t kBaseBlock = 2048;  // base points per distance tile

KnnResult KnnImpl(MatrixView base, MatrixView queries, size_t k,
                  bool exclude_identity, size_t num_threads = 0) {
  USP_CHECK(base.cols() == queries.cols());
  USP_CHECK(k > 0 && k <= base.rows());
  const size_t nq = queries.rows(), nb = base.rows(), d = base.cols();

  KnnResult result;
  result.k = k;
  result.indices.resize(nq * k);
  result.distances.resize(nq * k);

  std::vector<float> base_norms, query_norms;
  RowSquaredNorms(base, &base_norms);
  RowSquaredNorms(queries, &query_norms);
  const DistanceKernels& kd = GetDistanceKernels();

  ParallelFor(nq, 8, num_threads, [&](size_t q_begin, size_t q_end, size_t) {
    std::vector<TopK> heaps;
    heaps.reserve(q_end - q_begin);
    for (size_t q = q_begin; q < q_end; ++q) heaps.emplace_back(k);
    std::vector<float> dots(kBaseBlock);

    for (size_t b0 = 0; b0 < nb; b0 += kBaseBlock) {
      const size_t b1 = std::min(nb, b0 + kBaseBlock);
      for (size_t q = q_begin; q < q_end; ++q) {
        const float* qv = queries.Row(q);
        const float q_norm = query_norms[q];
        kd.score_block_dot(qv, base.Row(b0), b1 - b0, d, dots.data());
        TopK& heap = heaps[q - q_begin];
        for (size_t b = b0; b < b1; ++b) {
          if (exclude_identity && b == q) continue;
          const float dist =
              std::max(0.0f, q_norm + base_norms[b] - 2.0f * dots[b - b0]);
          heap.Push(dist, static_cast<uint32_t>(b));
        }
      }
    }
    for (size_t q = q_begin; q < q_end; ++q) {
      auto sorted = heaps[q - q_begin].TakeSorted();
      for (size_t j = 0; j < k; ++j) {
        result.indices[q * k + j] = sorted[j].id;
        result.distances[q * k + j] = sorted[j].distance;
      }
    }
  });
  return result;
}

// Generic-metric brute force: per query, score base rows through the
// DistanceComputer (already in minimized form) and keep the top k. With a
// `filter`, the allowed id list is materialized once per call and only those
// rows are gather-scored (dropped rows are never scored — the pushdown
// contract — so a 1%-selectivity scan does ~1% of the distance work);
// ScoreIds applies the same per-row kernel as ScoreRange, so the results are
// bit-identical to a full scan + drop. When the filter admits fewer than k
// rows, trailing slots pad with the kInvalidId sentinel / +inf (only
// reachable with a filter: unfiltered callers check k <= rows).
KnnResult KnnImplMetric(MatrixView base, MatrixView queries, size_t k,
                        Metric metric, const IdSelector* filter,
                        size_t num_threads) {
  USP_CHECK(base.cols() == queries.cols());
  USP_CHECK(k > 0);
  USP_CHECK(filter != nullptr || k <= base.rows());
  const size_t nq = queries.rows(), nb = base.rows();

  KnnResult result;
  result.k = k;
  result.indices.assign(nq * k, kInvalidId);
  result.distances.assign(nq * k, std::numeric_limits<float>::infinity());

  const DistanceComputer dist(base, metric);
  std::vector<uint32_t> allowed;
  if (filter != nullptr) {
    for (size_t b = 0; b < nb; ++b) {
      const uint32_t id = static_cast<uint32_t>(b);
      if (filter->is_member(id)) allowed.push_back(id);
    }
  }

  ParallelFor(nq, 8, num_threads, [&](size_t q_begin, size_t q_end, size_t) {
    std::vector<float> scores(kBaseBlock);
    std::vector<float> scratch;
    for (size_t q = q_begin; q < q_end; ++q) {
      const float* prepared = dist.PrepareQuery(queries.Row(q), &scratch);
      TopK heap(k);
      if (filter == nullptr) {
        for (size_t b0 = 0; b0 < nb; b0 += kBaseBlock) {
          const size_t count = std::min(nb - b0, kBaseBlock);
          dist.ScoreRange(prepared, static_cast<uint32_t>(b0), count,
                          scores.data());
          for (size_t b = 0; b < count; ++b) {
            heap.Push(scores[b], static_cast<uint32_t>(b0 + b));
          }
        }
      } else {
        for (size_t a0 = 0; a0 < allowed.size(); a0 += kBaseBlock) {
          const size_t count = std::min(allowed.size() - a0, kBaseBlock);
          dist.ScoreIds(prepared, allowed.data() + a0, count, scores.data());
          for (size_t i = 0; i < count; ++i) {
            heap.Push(scores[i], allowed[a0 + i]);
          }
        }
      }
      auto sorted = heap.TakeSorted();
      for (size_t j = 0; j < sorted.size(); ++j) {
        result.indices[q * k + j] = sorted[j].id;
        result.distances[q * k + j] = sorted[j].distance;
      }
    }
  });
  return result;
}
}  // namespace

KnnResult BruteForceKnn(MatrixView base, MatrixView queries, size_t k,
                        size_t num_threads) {
  return KnnImpl(base, queries, k, /*exclude_identity=*/false, num_threads);
}

KnnResult BruteForceKnn(MatrixView base, MatrixView queries, size_t k,
                        Metric metric, size_t num_threads) {
  if (metric == Metric::kSquaredL2) {
    return KnnImpl(base, queries, k, /*exclude_identity=*/false, num_threads);
  }
  return KnnImplMetric(base, queries, k, metric, /*filter=*/nullptr,
                       num_threads);
}

KnnResult BruteForceKnn(MatrixView base, MatrixView queries, size_t k,
                        Metric metric, const IdSelector* filter,
                        size_t num_threads) {
  if (filter == nullptr) return BruteForceKnn(base, queries, k, metric,
                                              num_threads);
  // Filtered scans take the kernel path even for L2: the norm-trick tiles
  // produce different float rounding than ScoreIds, and the filtered contract
  // is bit-identity with the index types' rerank stage.
  return KnnImplMetric(base, queries, k, metric, filter, num_threads);
}

RadiusResult BruteForceRadius(MatrixView base, MatrixView queries,
                              float radius, Metric metric,
                              const IdSelector* filter, size_t num_threads) {
  USP_CHECK(base.cols() == queries.cols());
  const size_t nq = queries.rows(), nb = base.rows();

  const DistanceComputer dist(base, metric);
  std::vector<uint32_t> allowed;
  if (filter != nullptr) {
    for (size_t b = 0; b < nb; ++b) {
      const uint32_t id = static_cast<uint32_t>(b);
      if (filter->is_member(id)) allowed.push_back(id);
    }
  }
  const size_t scanned = filter == nullptr ? nb : allowed.size();
  const uint32_t dropped = static_cast<uint32_t>(nb - scanned);

  RadiusOptions options;
  options.num_threads = num_threads;
  options.filter = filter;
  return CollectRadiusRows(
      nq, options, [&](size_t q, RadiusResult* result) {
        std::vector<float> scores(kBaseBlock);
        std::vector<float> scratch;
        const float* prepared = dist.PrepareQuery(queries.Row(q), &scratch);
        std::vector<Neighbor> hits;
        if (filter == nullptr) {
          for (size_t b0 = 0; b0 < nb; b0 += kBaseBlock) {
            const size_t count = std::min(nb - b0, kBaseBlock);
            dist.ScoreRange(prepared, static_cast<uint32_t>(b0), count,
                            scores.data());
            for (size_t b = 0; b < count; ++b) {
              if (scores[b] <= radius) {
                hits.push_back(Neighbor{scores[b], static_cast<uint32_t>(b0 + b)});
              }
            }
          }
        } else {
          for (size_t a0 = 0; a0 < allowed.size(); a0 += kBaseBlock) {
            const size_t count = std::min(allowed.size() - a0, kBaseBlock);
            dist.ScoreIds(prepared, allowed.data() + a0, count, scores.data());
            for (size_t i = 0; i < count; ++i) {
              if (scores[i] <= radius) {
                hits.push_back(Neighbor{scores[i], allowed[a0 + i]});
              }
            }
          }
        }
        // ScoreRange/ScoreIds walk ids in ascending order and distances only
        // break ties by id, so `hits` needs an explicit sort by (distance, id)
        // like every other radius row.
        std::sort(hits.begin(), hits.end());
        result->candidate_counts[q] = static_cast<uint32_t>(scanned);
        if (result->stats) {
          result->stats->candidates_scored[q] = static_cast<uint32_t>(scanned);
          result->stats->filtered_out[q] = dropped;
        }
        return hits;
      });
}

KnnResult BuildKnnMatrix(const Matrix& data, size_t k) {
  USP_CHECK(k < data.rows());
  return KnnImpl(data, data, k, /*exclude_identity=*/true);
}

KnnResult FilterKnnToSubset(const KnnResult& global,
                            const std::vector<uint32_t>& subset_ids) {
  const size_t n = subset_ids.size();
  const size_t k = global.k;
  std::unordered_map<uint32_t, uint32_t> local_id;
  local_id.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    local_id.emplace(subset_ids[i], static_cast<uint32_t>(i));
  }
  KnnResult out;
  out.k = k;
  out.indices.resize(n * k);
  out.distances.assign(n * k, 0.0f);
  std::vector<uint32_t> kept;
  for (size_t i = 0; i < n; ++i) {
    kept.clear();
    const uint32_t* nbrs = global.Row(subset_ids[i]);
    for (size_t t = 0; t < k; ++t) {
      const auto it = local_id.find(nbrs[t]);
      if (it != local_id.end()) kept.push_back(it->second);
    }
    if (kept.empty()) kept.push_back(static_cast<uint32_t>(i));
    for (size_t t = 0; t < k; ++t) {
      out.indices[i * k + t] = kept[t % kept.size()];
    }
  }
  return out;
}

std::vector<Neighbor> RerankCandidatesScored(
    const DistanceComputer& dist, const float* query,
    const std::vector<uint32_t>& candidates, size_t k,
    const IdSelector* filter, RerankCounts* counts) {
  // Ensembles and multi-probe sweeps can feed overlapping candidate lists;
  // dedupe so duplicates never occupy several top-k slots.
  std::vector<uint32_t> ids(candidates);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());

  if (filter != nullptr) {
    const size_t before = ids.size();
    ids.erase(std::remove_if(ids.begin(), ids.end(),
                             [&](uint32_t id) { return !filter->is_member(id); }),
              ids.end());
    if (counts != nullptr) {
      counts->filtered_out = static_cast<uint32_t>(before - ids.size());
    }
  }
  if (counts != nullptr) counts->scored = static_cast<uint32_t>(ids.size());

  std::vector<float> scratch;
  const float* prepared = dist.PrepareQuery(query, &scratch);
  std::vector<float> scores(ids.size());
  dist.ScoreIds(prepared, ids.data(), ids.size(), scores.data());

  TopK heap(std::min(k, ids.size()));
  for (size_t i = 0; i < ids.size(); ++i) heap.Push(scores[i], ids[i]);
  return heap.TakeSorted();
}

std::vector<uint32_t> RerankCandidates(const DistanceComputer& dist,
                                       const float* query,
                                       const std::vector<uint32_t>& candidates,
                                       size_t k) {
  const auto sorted = RerankCandidatesScored(dist, query, candidates, k);
  std::vector<uint32_t> out;
  out.reserve(sorted.size());
  for (const auto& n : sorted) out.push_back(n.id);
  return out;
}

std::vector<uint32_t> RerankCandidates(MatrixView base, const float* query,
                                       const std::vector<uint32_t>& candidates,
                                       size_t k) {
  return RerankCandidates(DistanceComputer(base, Metric::kSquaredL2), query,
                          candidates, k);
}

}  // namespace usp
