// Bounded max-heap for selecting the k smallest (distance, id) pairs while
// streaming over candidates. Shared by brute-force search, index probing, and
// graph construction.
#ifndef USP_KNN_TOP_K_H_
#define USP_KNN_TOP_K_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace usp {

/// One scored neighbor candidate.
struct Neighbor {
  float distance;
  uint32_t id;

  bool operator<(const Neighbor& other) const {
    if (distance != other.distance) return distance < other.distance;
    return id < other.id;  // deterministic ordering under ties
  }
};

/// Keeps the k smallest-distance neighbors seen so far. Push is O(log k).
class TopK {
 public:
  explicit TopK(size_t k) : k_(k) { heap_.reserve(k + 1); }

  /// Offers a candidate; kept only if among the current k best.
  void Push(float distance, uint32_t id) {
    if (heap_.size() < k_) {
      heap_.push_back({distance, id});
      std::push_heap(heap_.begin(), heap_.end());
    } else if (k_ > 0 && Neighbor{distance, id} < heap_.front()) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.back() = {distance, id};
      std::push_heap(heap_.begin(), heap_.end());
    }
  }

  /// Current worst kept distance (+inf while not full).
  float WorstDistance() const {
    if (heap_.size() < k_) return std::numeric_limits<float>::infinity();
    return heap_.front().distance;
  }

  bool full() const { return heap_.size() >= k_; }
  size_t size() const { return heap_.size(); }

  /// Extracts results sorted by ascending distance; the heap is consumed.
  std::vector<Neighbor> TakeSorted() {
    std::sort_heap(heap_.begin(), heap_.end());
    return std::move(heap_);
  }

 private:
  size_t k_;
  std::vector<Neighbor> heap_;  // max-heap on (distance, id)
};

}  // namespace usp

#endif  // USP_KNN_TOP_K_H_
