// Exact k-nearest-neighbor search by blocked brute force. Produces ground
// truth for every experiment and the k'-NN matrix of the paper's offline
// phase (Sec. 4.2.1).
#ifndef USP_KNN_BRUTE_FORCE_H_
#define USP_KNN_BRUTE_FORCE_H_

#include <cstdint>
#include <vector>

#include "dist/distance_computer.h"
#include "dist/metric.h"
#include "index/id_selector.h"
#include "knn/top_k.h"
#include "tensor/matrix.h"
#include "workload/radius.h"

namespace usp {

/// Exact k-NN result for a batch of queries: row i holds the ids (and
/// distances) of query i's neighbors, ascending by distance. Distances are in
/// the metric's minimized form (squared L2, negated inner product, or cosine
/// distance — see dist/metric.h).
struct KnnResult {
  size_t k = 0;
  std::vector<uint32_t> indices;   // (num_queries x k), row-major
  std::vector<float> distances;    // matching minimized-form distances

  const uint32_t* Row(size_t q) const { return indices.data() + q * k; }
};

/// Finds the exact k nearest base points (squared Euclidean) for every query.
/// Blocked GEMM formulation: distances are computed tile-by-tile so memory
/// stays bounded at O(block^2) regardless of dataset size. Both operands are
/// non-owning views (a Matrix converts implicitly), so the mutable write
/// segment of the serving layer and mmap'd storage are scanned zero-copy.
/// `num_threads` caps the per-query sharding (0 = pool default, 1 = serial;
/// the row-norm precomputation uses the pool's data-parallel loop either
/// way, matching the scoring-stage convention of the index types); results
/// are identical at every setting.
KnnResult BruteForceKnn(MatrixView base, MatrixView queries, size_t k,
                        size_t num_threads = 0);

/// Same, under an arbitrary metric. kSquaredL2 takes the blocked norm-trick
/// path above; other metrics scan base blocks through the dispatched
/// ScoreRange kernels.
KnnResult BruteForceKnn(MatrixView base, MatrixView queries, size_t k,
                        Metric metric, size_t num_threads = 0);

/// Predicate-filtered exact k-NN: only base rows accepted by `filter` may
/// appear (filter == nullptr behaves like the overload above). The allowed
/// ids are materialized once and gather-scored through the DistanceComputer
/// kernel path (ScoreIds) — for every metric, including kSquaredL2 — so
/// dropped rows are never scored and the distances are bit-identical to the
/// candidate-rerank path of the index types; this makes it the reference the
/// filtered-search acceptance tests pin index results against. When fewer
/// than k rows are allowed, trailing slots are padded with the 0xFFFFFFFFu
/// sentinel (index/index.h kInvalidId) and +inf distance.
KnnResult BruteForceKnn(MatrixView base, MatrixView queries, size_t k,
                        Metric metric, const IdSelector* filter,
                        size_t num_threads = 0);

/// Exact radius (range) search: for every query, all base rows whose
/// minimized-form distance is <= radius (inclusive), as a CSR RadiusResult
/// with rows sorted by ascending (distance, id). This is the reference every
/// Index::RadiusSearchBatch implementation is pinned against at full budget
/// (tests/radius_search_test.cc): unfiltered scans go through ScoreRange and
/// filtered scans materialize the allowed ids once and gather-score them
/// through ScoreIds — the same per-row kernels as the index types' range
/// filter — so bit-identity holds for offsets, ids, AND distances. (The L2
/// norm-trick tiles of BruteForceKnn round differently and are deliberately
/// not used here.) candidate_counts reports rows scored per query (the
/// allowed count under a filter).
RadiusResult BruteForceRadius(MatrixView base, MatrixView queries,
                              float radius, Metric metric,
                              const IdSelector* filter = nullptr,
                              size_t num_threads = 0);

/// k'-NN matrix of the dataset against itself with self-matches excluded
/// (row i never contains i). This is Fig. 2 of the paper.
KnnResult BuildKnnMatrix(const Matrix& data, size_t k);

/// Work counters reported by RerankCandidatesScored (both post-dedupe).
/// `scored` is the |C(q)| that lands in BatchSearchResult::candidate_counts:
/// candidates that passed the selector and were exact-scored.
struct RerankCounts {
  uint32_t scored = 0;
  uint32_t filtered_out = 0;  ///< candidates the selector dropped unscored
};

/// Re-ranks a candidate list by exact distance under `dist`'s metric and
/// returns the top k candidates as (distance, id) pairs, ascending by
/// distance (ties by id). Duplicate ids in `candidates` (e.g. from
/// overlapping ensemble probes) are deduplicated before scoring, so the
/// result never repeats an id. When `filter` is set, candidates it rejects
/// are dropped *before* scoring (selector pushdown: disallowed rows cost no
/// distance work and can never displace allowed ones); `counts`, when
/// non-null, receives the scored/filtered tallies. Scoring goes through the
/// batched gather-by-id kernels (prefetched). Used by every partition-based
/// index for the final scan of the candidate set; the scores feed
/// cross-segment merging in the serving layer.
std::vector<Neighbor> RerankCandidatesScored(
    const DistanceComputer& dist, const float* query,
    const std::vector<uint32_t>& candidates, size_t k,
    const IdSelector* filter = nullptr, RerankCounts* counts = nullptr);

/// Id-only convenience wrapper over RerankCandidatesScored.
std::vector<uint32_t> RerankCandidates(const DistanceComputer& dist,
                                       const float* query,
                                       const std::vector<uint32_t>& candidates,
                                       size_t k);

/// Squared-L2 convenience overload over a raw base matrix.
std::vector<uint32_t> RerankCandidates(MatrixView base, const float* query,
                                       const std::vector<uint32_t>& candidates,
                                       size_t k);

/// Restricts a global k-NN matrix to a subset of points, renumbering to local
/// ids (position in `subset_ids`). A point's filtered list keeps its global
/// neighbors that fall inside the subset; short lists are padded by cycling
/// the kept neighbors (or the point itself when none survive), so the result
/// has the same fixed k as `global`. Used by hierarchical training, where
/// most of a point's neighbors share its bin by construction.
KnnResult FilterKnnToSubset(const KnnResult& global,
                            const std::vector<uint32_t>& subset_ids);

}  // namespace usp

#endif  // USP_KNN_BRUTE_FORCE_H_
