// External clustering-validation metrics for Table 5. The paper shows plots;
// we quantify the same comparison with Adjusted Rand Index, Normalized Mutual
// Information and purity against the generative labels.
#ifndef USP_CLUSTER_METRICS_H_
#define USP_CLUSTER_METRICS_H_

#include <cstdint>
#include <vector>

namespace usp {

/// Adjusted Rand Index in [-1, 1]; 1 = identical partitions, 0 = chance.
double AdjustedRandIndex(const std::vector<uint32_t>& truth,
                         const std::vector<uint32_t>& predicted);

/// Normalized mutual information in [0, 1] (arithmetic-mean normalization).
double NormalizedMutualInformation(const std::vector<uint32_t>& truth,
                                   const std::vector<uint32_t>& predicted);

/// Purity in (0, 1]: fraction of points in the majority true class of their
/// predicted cluster.
double Purity(const std::vector<uint32_t>& truth,
              const std::vector<uint32_t>& predicted);

/// Maps possibly-sparse labels (e.g. DBSCAN with noise = -1) onto dense
/// unsigned ids; each distinct input value gets its own id.
std::vector<uint32_t> DensifyLabels(const std::vector<int32_t>& labels);

}  // namespace usp

#endif  // USP_CLUSTER_METRICS_H_
