#include "cluster/dbscan.h"

#include <deque>

#include "dist/distance_kernels.h"

namespace usp {

namespace {
// 1-vs-many block scan of the whole dataset against the center point;
// `dist_scratch` (resized to n) keeps the scan allocation-free per call.
void RegionQuery(const Matrix& points, size_t center, float eps_sq,
                 std::vector<float>* dist_scratch,
                 std::vector<uint32_t>* out) {
  out->clear();
  const size_t n = points.rows(), d = points.cols();
  dist_scratch->resize(n);
  GetDistanceKernels().score_block_l2(points.Row(center), points.data(), n, d,
                                      dist_scratch->data());
  for (size_t i = 0; i < n; ++i) {
    if ((*dist_scratch)[i] <= eps_sq) {
      out->push_back(static_cast<uint32_t>(i));
    }
  }
}
}  // namespace

DbscanResult RunDbscan(const Matrix& points, const DbscanConfig& config) {
  const size_t n = points.rows();
  const float eps_sq = config.epsilon * config.epsilon;
  DbscanResult result;
  result.labels.assign(n, kDbscanNoise);
  std::vector<uint8_t> visited(n, 0);
  std::vector<uint32_t> neighbors, expansion;
  std::vector<float> dist_scratch;

  int32_t cluster = 0;
  for (size_t i = 0; i < n; ++i) {
    if (visited[i]) continue;
    visited[i] = 1;
    RegionQuery(points, i, eps_sq, &dist_scratch, &neighbors);
    if (neighbors.size() < config.min_points) continue;  // stays noise for now

    // Start a new cluster and expand it breadth-first over core points.
    result.labels[i] = cluster;
    std::deque<uint32_t> frontier(neighbors.begin(), neighbors.end());
    while (!frontier.empty()) {
      const uint32_t p = frontier.front();
      frontier.pop_front();
      if (result.labels[p] == kDbscanNoise) result.labels[p] = cluster;
      if (visited[p]) continue;
      visited[p] = 1;
      result.labels[p] = cluster;
      RegionQuery(points, p, eps_sq, &dist_scratch, &expansion);
      if (expansion.size() >= config.min_points) {
        frontier.insert(frontier.end(), expansion.begin(), expansion.end());
      }
    }
    ++cluster;
  }
  result.num_clusters = static_cast<size_t>(cluster);
  return result;
}

}  // namespace usp
