// Spectral clustering (Ng, Jordan, Weiss 2001), a Table-5 baseline:
// k-NN affinity graph -> normalized Laplacian -> smallest-k eigenvectors
// (orthogonal power iteration on the shifted operator; no external LAPACK)
// -> row normalization -> k-means on the spectral embedding.
#ifndef USP_CLUSTER_SPECTRAL_H_
#define USP_CLUSTER_SPECTRAL_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace usp {

/// Spectral clustering parameters.
struct SpectralConfig {
  size_t num_clusters = 2;
  size_t graph_neighbors = 10;   ///< k for the affinity k-NN graph
  /// Krylov budget: the Lanczos subspace size is power_iterations / 2.
  /// Fiedler-vector convergence on ring/moon graphs needs ~n/8 dimensions at
  /// n = 1000, hence the generous default.
  size_t power_iterations = 300;
  uint64_t seed = 1;
};

/// Returns one label in [0, num_clusters) per point.
std::vector<uint32_t> RunSpectralClustering(const Matrix& points,
                                            const SpectralConfig& config);

}  // namespace usp

#endif  // USP_CLUSTER_SPECTRAL_H_
