#include "cluster/spectral.h"

#include <algorithm>
#include <cmath>

#include "baselines/kmeans.h"
#include "graphpart/graph.h"
#include "knn/brute_force.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace usp {

namespace {

// Jacobi eigendecomposition of a small dense symmetric matrix (column-major
// irrelevant: symmetric). Returns eigenvalues ascending with matching
// eigenvectors in the columns of `vectors`.
void JacobiEigen(Matrix* a, std::vector<double>* values, Matrix* vectors) {
  const size_t n = a->rows();
  *vectors = Matrix(n, n);
  for (size_t i = 0; i < n; ++i) (*vectors)(i, i) = 1.0f;
  for (int sweep = 0; sweep < 60; ++sweep) {
    double off = 0.0;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) off += std::abs((*a)(p, q));
    }
    if (off < 1e-10) break;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = (*a)(p, q);
        if (std::abs(apq) < 1e-14) continue;
        const double app = (*a)(p, p), aqq = (*a)(q, q);
        const double theta = 0.5 * (aqq - app) / apq;
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (size_t i = 0; i < n; ++i) {
          const double aip = (*a)(i, p), aiq = (*a)(i, q);
          (*a)(i, p) = static_cast<float>(c * aip - s * aiq);
          (*a)(i, q) = static_cast<float>(s * aip + c * aiq);
        }
        for (size_t i = 0; i < n; ++i) {
          const double api = (*a)(p, i), aqi = (*a)(q, i);
          (*a)(p, i) = static_cast<float>(c * api - s * aqi);
          (*a)(q, i) = static_cast<float>(s * api + c * aqi);
        }
        for (size_t i = 0; i < n; ++i) {
          const double vip = (*vectors)(i, p), viq = (*vectors)(i, q);
          (*vectors)(i, p) = static_cast<float>(c * vip - s * viq);
          (*vectors)(i, q) = static_cast<float>(s * vip + c * viq);
        }
      }
    }
  }
  values->resize(n);
  for (size_t i = 0; i < n; ++i) (*values)[i] = (*a)(i, i);
}

}  // namespace

std::vector<uint32_t> RunSpectralClustering(const Matrix& points,
                                            const SpectralConfig& config) {
  const size_t n = points.rows();
  USP_CHECK(n >= config.num_clusters);
  const size_t k_graph = std::min(config.graph_neighbors, n - 1);

  // Symmetrized k-NN affinity graph (binary weights).
  const KnnResult knn = BuildKnnMatrix(points, k_graph);
  const Graph graph = BuildKnnGraph(knn, n);

  // Normalized adjacency N = D^-1/2 A D^-1/2. Its top eigenvectors are the
  // bottom eigenvectors of the normalized Laplacian L = I - N.
  std::vector<float> inv_sqrt_degree(n, 0.0f);
  for (size_t i = 0; i < n; ++i) {
    const size_t degree = graph.adjacency[i].size();
    inv_sqrt_degree[i] =
        degree > 0 ? 1.0f / std::sqrt(static_cast<float>(degree)) : 0.0f;
  }
  auto apply_n = [&](const std::vector<float>& v, std::vector<float>* out) {
    for (size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (uint32_t nb : graph.adjacency[i]) {
        acc += static_cast<double>(inv_sqrt_degree[i]) * inv_sqrt_degree[nb] *
               v[nb];
      }
      (*out)[i] = static_cast<float>(acc);
    }
  };

  // Deflated Lanczos: extract the top eigenvector of N k times, each run
  // fully reorthogonalized against both its own Krylov basis and all
  // previously extracted eigenvectors. Plain (single-vector) Lanczos cannot
  // resolve the multiplicity of the top eigenvalue — on a graph with c
  // connected components the eigenvalue 1 has multiplicity c but one Krylov
  // space contains only one direction of that eigenspace — and the cluster
  // indicators we need ARE that degenerate eigenspace. Deflation recovers
  // one direction per run.
  const size_t k = config.num_clusters;
  const size_t subspace = std::min(
      n, std::max<size_t>(24, config.power_iterations / 2));
  Rng rng(config.seed);
  std::vector<std::vector<float>> found;  // extracted eigenvectors

  auto orthogonalize = [&](std::vector<float>* x,
                           const std::vector<std::vector<float>>& against) {
    for (const auto& prev : against) {
      double dot = 0.0;
      for (size_t i = 0; i < n; ++i) {
        dot += static_cast<double>((*x)[i]) * prev[i];
      }
      for (size_t i = 0; i < n; ++i) {
        (*x)[i] -= static_cast<float>(dot) * prev[i];
      }
    }
  };
  auto normalize = [&](std::vector<float>* x) {
    double norm = 0.0;
    for (float value : *x) norm += static_cast<double>(value) * value;
    norm = std::sqrt(norm);
    if (norm < 1e-12) return false;
    for (auto& value : *x) value = static_cast<float>(value / norm);
    return true;
  };

  for (size_t extraction = 0; extraction < k; ++extraction) {
    std::vector<std::vector<float>> lanczos_basis;
    std::vector<double> alpha, beta;
    std::vector<float> v(n), w(n);
    for (size_t i = 0; i < n; ++i) v[i] = static_cast<float>(rng.Gaussian());
    orthogonalize(&v, found);
    USP_CHECK(normalize(&v));

    for (size_t j = 0; j < subspace; ++j) {
      lanczos_basis.push_back(v);
      apply_n(v, &w);
      double a_j = 0.0;
      for (size_t i = 0; i < n; ++i) a_j += static_cast<double>(w[i]) * v[i];
      alpha.push_back(a_j);
      orthogonalize(&w, found);
      orthogonalize(&w, lanczos_basis);
      double b_j = 0.0;
      for (float value : w) b_j += static_cast<double>(value) * value;
      b_j = std::sqrt(b_j);
      if (b_j < 1e-10) break;  // invariant subspace: T is complete
      beta.push_back(b_j);
      for (size_t i = 0; i < n; ++i) v[i] = static_cast<float>(w[i] / b_j);
    }

    const size_t m = lanczos_basis.size();
    Matrix tri(m, m);
    for (size_t i = 0; i < m; ++i) {
      tri(i, i) = static_cast<float>(alpha[i]);
      if (i + 1 < m && i < beta.size()) {
        tri(i, i + 1) = static_cast<float>(beta[i]);
        tri(i + 1, i) = static_cast<float>(beta[i]);
      }
    }
    std::vector<double> eigenvalues;
    Matrix eigenvectors;
    JacobiEigen(&tri, &eigenvalues, &eigenvectors);
    size_t top = 0;
    for (size_t i = 1; i < m; ++i) {
      if (eigenvalues[i] > eigenvalues[top]) top = i;
    }
    std::vector<float> ritz(n, 0.0f);
    for (size_t j = 0; j < m; ++j) {
      const float coeff = eigenvectors(j, top);
      if (coeff == 0.0f) continue;
      const auto& basis_vec = lanczos_basis[j];
      for (size_t i = 0; i < n; ++i) ritz[i] += coeff * basis_vec[i];
    }
    orthogonalize(&ritz, found);  // numerical hygiene
    USP_CHECK(normalize(&ritz));
    found.push_back(std::move(ritz));
  }

  Matrix embedding(n, k);
  for (size_t c = 0; c < k; ++c) {
    for (size_t i = 0; i < n; ++i) embedding(i, c) = found[c][i];
  }

  // Row-normalize the embedding (Ng-Jordan-Weiss) and cluster with k-means.
  NormalizeRows(&embedding);
  KMeansConfig kc;
  kc.num_clusters = k;
  kc.max_iterations = 50;
  kc.seed = config.seed ^ 0xC1;
  return RunKMeans(embedding, kc).assignments;
}

}  // namespace usp
