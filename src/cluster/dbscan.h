// DBSCAN (Ester et al. 1996), a Table-5 clustering baseline. Brute-force
// region queries: the Table-5 datasets are small 2-D benchmarks.
#ifndef USP_CLUSTER_DBSCAN_H_
#define USP_CLUSTER_DBSCAN_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace usp {

/// DBSCAN parameters.
struct DbscanConfig {
  float epsilon = 0.2f;   ///< neighborhood radius (Euclidean)
  size_t min_points = 5;  ///< core-point density threshold (incl. self)
};

/// Per-point labels: cluster ids from 0 upward; kDbscanNoise for noise.
inline constexpr int32_t kDbscanNoise = -1;

struct DbscanResult {
  std::vector<int32_t> labels;
  size_t num_clusters = 0;
};

/// Runs DBSCAN over `points` with Euclidean distance.
DbscanResult RunDbscan(const Matrix& points, const DbscanConfig& config);

}  // namespace usp

#endif  // USP_CLUSTER_DBSCAN_H_
