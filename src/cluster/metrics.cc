#include "cluster/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/status.h"

namespace usp {

namespace {
// Contingency table between two labelings plus marginals.
struct Contingency {
  std::vector<std::vector<size_t>> counts;  // truth x predicted
  std::vector<size_t> truth_sizes;
  std::vector<size_t> predicted_sizes;
  size_t n = 0;
};

Contingency BuildContingency(const std::vector<uint32_t>& truth,
                             const std::vector<uint32_t>& predicted) {
  USP_CHECK(truth.size() == predicted.size());
  Contingency c;
  c.n = truth.size();
  uint32_t max_truth = 0, max_predicted = 0;
  for (size_t i = 0; i < c.n; ++i) {
    max_truth = std::max(max_truth, truth[i]);
    max_predicted = std::max(max_predicted, predicted[i]);
  }
  c.counts.assign(max_truth + 1, std::vector<size_t>(max_predicted + 1, 0));
  c.truth_sizes.assign(max_truth + 1, 0);
  c.predicted_sizes.assign(max_predicted + 1, 0);
  for (size_t i = 0; i < c.n; ++i) {
    ++c.counts[truth[i]][predicted[i]];
    ++c.truth_sizes[truth[i]];
    ++c.predicted_sizes[predicted[i]];
  }
  return c;
}

double Choose2(size_t x) {
  return 0.5 * static_cast<double>(x) * static_cast<double>(x - 1);
}
}  // namespace

double AdjustedRandIndex(const std::vector<uint32_t>& truth,
                         const std::vector<uint32_t>& predicted) {
  const Contingency c = BuildContingency(truth, predicted);
  if (c.n < 2) return 1.0;
  double sum_cells = 0.0;
  for (const auto& row : c.counts) {
    for (size_t v : row) sum_cells += Choose2(v);
  }
  double sum_truth = 0.0, sum_predicted = 0.0;
  for (size_t v : c.truth_sizes) sum_truth += Choose2(v);
  for (size_t v : c.predicted_sizes) sum_predicted += Choose2(v);
  const double total = Choose2(c.n);
  const double expected = sum_truth * sum_predicted / total;
  const double max_index = 0.5 * (sum_truth + sum_predicted);
  if (std::abs(max_index - expected) < 1e-12) return 1.0;
  return (sum_cells - expected) / (max_index - expected);
}

double NormalizedMutualInformation(const std::vector<uint32_t>& truth,
                                   const std::vector<uint32_t>& predicted) {
  const Contingency c = BuildContingency(truth, predicted);
  const double n = static_cast<double>(c.n);
  double mi = 0.0, h_truth = 0.0, h_predicted = 0.0;
  for (size_t t = 0; t < c.counts.size(); ++t) {
    for (size_t p = 0; p < c.counts[t].size(); ++p) {
      const size_t v = c.counts[t][p];
      if (v == 0) continue;
      const double joint = v / n;
      const double pt = c.truth_sizes[t] / n;
      const double pp = c.predicted_sizes[p] / n;
      mi += joint * std::log(joint / (pt * pp));
    }
  }
  for (size_t v : c.truth_sizes) {
    if (v > 0) h_truth -= (v / n) * std::log(v / n);
  }
  for (size_t v : c.predicted_sizes) {
    if (v > 0) h_predicted -= (v / n) * std::log(v / n);
  }
  const double denom = 0.5 * (h_truth + h_predicted);
  if (denom < 1e-12) return 1.0;  // both labelings are constant
  return std::max(0.0, mi / denom);
}

double Purity(const std::vector<uint32_t>& truth,
              const std::vector<uint32_t>& predicted) {
  const Contingency c = BuildContingency(truth, predicted);
  if (c.n == 0) return 1.0;
  // For each predicted cluster, count its majority true class.
  size_t majority_total = 0;
  const size_t num_predicted = c.predicted_sizes.size();
  for (size_t p = 0; p < num_predicted; ++p) {
    size_t best = 0;
    for (size_t t = 0; t < c.counts.size(); ++t) {
      best = std::max(best, c.counts[t][p]);
    }
    majority_total += best;
  }
  return static_cast<double>(majority_total) / static_cast<double>(c.n);
}

std::vector<uint32_t> DensifyLabels(const std::vector<int32_t>& labels) {
  std::map<int32_t, uint32_t> remap;
  std::vector<uint32_t> out(labels.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    const auto [it, inserted] =
        remap.emplace(labels[i], static_cast<uint32_t>(remap.size()));
    out[i] = it->second;
  }
  return out;
}

}  // namespace usp
