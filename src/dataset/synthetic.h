// Synthetic dataset generators.
//
// The paper evaluates on SIFT1M and MNIST (Sec. 5.1.1), which are not
// available offline; these generators produce workloads with the structural
// properties the paper's results depend on (clustered high-dimensional data
// with out-of-sample queries from the same distribution). Real fvecs/ivecs
// files can be substituted via dataset/io.h. The 2-D generators reproduce the
// scikit-learn datasets of Table 5 (moons, circles, make_classification).
#ifndef USP_DATASET_SYNTHETIC_H_
#define USP_DATASET_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "tensor/matrix.h"

namespace usp {

/// Points plus per-point generative labels (cluster/class ids). Labels are
/// never used to train the unsupervised partitioner; they serve as external
/// ground truth for clustering metrics (Table 5).
struct LabeledDataset {
  Matrix points;
  std::vector<uint32_t> labels;
};

/// Gaussian mixture with `num_clusters` isotropic components whose centers are
/// drawn uniformly in [0, center_range]^d. `spread` is each component's
/// standard deviation.
LabeledDataset MakeGaussianMixture(size_t n, size_t d, size_t num_clusters,
                                   float center_range, float spread,
                                   uint64_t seed);

/// SIFT-like workload: 128-d mixture with heavy cluster structure and values
/// shaped to the (non-negative, bounded) range of SIFT descriptors.
Matrix MakeSiftLike(size_t n, uint64_t seed);

/// MNIST-like workload: 784-d, ~10 dominant clusters, many near-zero
/// coordinates per point (like background pixels).
Matrix MakeMnistLike(size_t n, uint64_t seed);

/// Two interleaving half-moons (scikit-learn `make_moons`). Labels: moon id.
LabeledDataset MakeMoons(size_t n, float noise, uint64_t seed);

/// Two concentric circles (scikit-learn `make_circles`). Labels: circle id.
/// `factor` is the inner/outer radius ratio.
LabeledDataset MakeCircles(size_t n, float noise, float factor, uint64_t seed);

/// Linearly transformed Gaussian blobs approximating scikit-learn
/// `make_classification` with `num_classes` informative clusters in `d` dims.
LabeledDataset MakeClassification(size_t n, size_t d, size_t num_classes,
                                  float class_sep, uint64_t seed);

}  // namespace usp

#endif  // USP_DATASET_SYNTHETIC_H_
