#include "dataset/fvecs_stream.h"

#include <algorithm>
#include <cstring>

#include "util/rng.h"

namespace usp {

namespace {

// Rows pulled per sampler iteration. Internal granularity only: samplers act
// row-wise, so their output is the same at any value.
constexpr size_t kSamplerChunkRows = 4096;

}  // namespace

StatusOr<FvecsReader> FvecsReader::Open(const std::string& path) {
  FvecsReader reader;
  reader.path_ = path;
  reader.file_.reset(std::fopen(path.c_str(), "rb"));
  if (!reader.file_) return Status::IoError("cannot open " + path);
  std::FILE* f = reader.file_.get();

  int32_t dim = 0;
  if (std::fread(&dim, sizeof(int32_t), 1, f) != 1) {
    return Status::IoError("empty fvecs file " + path);
  }
  if (dim <= 0) return Status::IoError("bad dimension in " + path);
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status::IoError("cannot seek in " + path);
  }
  const long file_size = std::ftell(f);
  if (file_size < 0) return Status::IoError("cannot seek in " + path);
  const size_t record_bytes =
      sizeof(int32_t) + static_cast<size_t>(dim) * sizeof(float);
  if (static_cast<size_t>(file_size) % record_bytes != 0) {
    // A whole-record grid is the cheapest full-file truncation check; ragged
    // dimensions that happen to preserve the grid are caught per record in
    // NextChunk.
    return Status::IoError("truncated fvecs record in " + path);
  }
  reader.dim_ = static_cast<size_t>(dim);
  reader.num_rows_ = static_cast<size_t>(file_size) / record_bytes;
  Status status = reader.Reset();
  if (!status.ok()) return status;
  return reader;
}

Status FvecsReader::Reset() {
  if (std::fseek(file_.get(), 0, SEEK_SET) != 0) {
    return Status::IoError("cannot seek in " + path_);
  }
  cursor_ = 0;
  return Status::Ok();
}

StatusOr<MatrixView> FvecsReader::NextChunk(size_t max_rows) {
  if (max_rows == 0) {
    return Status::InvalidArgument("NextChunk needs max_rows > 0");
  }
  const size_t want = std::min(max_rows, num_rows_ - cursor_);
  if (buffer_.size() < want * dim_) buffer_.resize(want * dim_);
  std::FILE* f = file_.get();
  for (size_t i = 0; i < want; ++i) {
    int32_t this_dim = 0;
    if (std::fread(&this_dim, sizeof(int32_t), 1, f) != 1) {
      // Open sized the file as num_rows_ whole records; running out early
      // means it shrank underneath us.
      return Status::IoError("truncated fvecs record in " + path_);
    }
    if (this_dim <= 0) return Status::IoError("bad dimension in " + path_);
    if (static_cast<size_t>(this_dim) != dim_) {
      return Status::IoError("ragged fvecs records in " + path_);
    }
    if (std::fread(buffer_.data() + i * dim_, sizeof(float), dim_, f) !=
        dim_) {
      return Status::IoError("truncated fvecs record in " + path_);
    }
    ++cursor_;
  }
  return MatrixView(buffer_.data(), want, dim_);
}

StatusOr<MatrixView> MatrixStream::NextChunk(size_t max_rows) {
  if (max_rows == 0) {
    return Status::InvalidArgument("NextChunk needs max_rows > 0");
  }
  const size_t count = std::min(max_rows, data_.rows() - cursor_);
  MatrixView chunk(count > 0 ? data_.Row(cursor_) : data_.data(), count,
                   data_.cols());
  cursor_ += count;
  return chunk;
}

StatusOr<Matrix> ReservoirSample(ChunkStream* stream, size_t sample_rows,
                                 uint64_t seed) {
  if (sample_rows == 0) {
    return Status::InvalidArgument("sample_rows must be > 0");
  }
  Status status = stream->Reset();
  if (!status.ok()) return status;
  const size_t d = stream->dim();
  Matrix reservoir(std::min(sample_rows, stream->num_rows()), d);
  Rng rng(seed);
  size_t seen = 0;
  for (;;) {
    StatusOr<MatrixView> chunk = stream->NextChunk(kSamplerChunkRows);
    if (!chunk.ok()) return chunk.status();
    const MatrixView rows = chunk.value();
    if (rows.rows() == 0) break;
    for (size_t i = 0; i < rows.rows(); ++i, ++seen) {
      if (seen < sample_rows) {
        std::memcpy(reservoir.Row(seen), rows.Row(i), d * sizeof(float));
      } else {
        const uint64_t j = rng.UniformInt(seen + 1);
        if (j < sample_rows) {
          std::memcpy(reservoir.Row(j), rows.Row(i), d * sizeof(float));
        }
      }
    }
  }
  if (seen == 0) return Status::InvalidArgument("cannot sample an empty stream");
  return reservoir;
}

StatusOr<Matrix> StridedSample(ChunkStream* stream, size_t stride,
                               size_t max_rows) {
  if (stride == 0) return Status::InvalidArgument("stride must be > 0");
  Status status = stream->Reset();
  if (!status.ok()) return status;
  const size_t d = stream->dim();
  std::vector<float> picked;
  size_t row = 0, taken = 0;
  for (;;) {
    StatusOr<MatrixView> chunk = stream->NextChunk(kSamplerChunkRows);
    if (!chunk.ok()) return chunk.status();
    const MatrixView rows = chunk.value();
    if (rows.rows() == 0) break;
    for (size_t i = 0; i < rows.rows(); ++i, ++row) {
      if (row % stride != 0) continue;
      if (max_rows > 0 && taken >= max_rows) break;
      picked.insert(picked.end(), rows.Row(i), rows.Row(i) + d);
      ++taken;
    }
    if (max_rows > 0 && taken >= max_rows) break;
  }
  if (taken == 0) return Status::InvalidArgument("cannot sample an empty stream");
  return Matrix(taken, d, std::move(picked));
}

FvecsWriter::FvecsWriter(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "wb");
}

FvecsWriter::~FvecsWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FvecsWriter::Append(MatrixView rows) {
  if (file_ == nullptr) {
    return Status::IoError("cannot open " + path_ + " for writing");
  }
  if (failed_) return Status::IoError("short write to " + path_);
  if (rows.cols() == 0) {
    return Status::InvalidArgument("cannot write 0-dimensional fvecs rows");
  }
  if (dim_ == 0) {
    dim_ = rows.cols();
  } else if (rows.cols() != dim_) {
    return Status::InvalidArgument("ragged append to " + path_);
  }
  const int32_t dim = static_cast<int32_t>(dim_);
  for (size_t i = 0; i < rows.rows(); ++i) {
    if (std::fwrite(&dim, sizeof(int32_t), 1, file_) != 1 ||
        std::fwrite(rows.Row(i), sizeof(float), dim_, file_) != dim_) {
      failed_ = true;
      return Status::IoError("short write to " + path_);
    }
  }
  return Status::Ok();
}

Status FvecsWriter::Close() {
  if (file_ == nullptr) {
    return Status::IoError("cannot open " + path_ + " for writing");
  }
  const bool close_ok = std::fclose(file_) == 0;
  file_ = nullptr;
  if (failed_ || !close_ok) return Status::IoError("short write to " + path_);
  return Status::Ok();
}

}  // namespace usp
