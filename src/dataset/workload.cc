#include "dataset/workload.h"

#include <cstring>

#include "dataset/synthetic.h"

namespace usp {

Workload MakeWorkload(const WorkloadSpec& spec) {
  const size_t total = spec.num_base + spec.num_queries;
  Matrix all;
  Workload w;
  switch (spec.kind) {
    case WorkloadKind::kSiftLike:
      all = MakeSiftLike(total, spec.seed);
      w.name = "sift-like";
      break;
    case WorkloadKind::kMnistLike:
      all = MakeMnistLike(total, spec.seed);
      w.name = "mnist-like";
      break;
    case WorkloadKind::kGaussian:
      all = MakeGaussianMixture(total, 32, 16, 10.0f, 1.0f, spec.seed).points;
      w.name = "gaussian";
      break;
  }
  // First num_base rows are the dataset; the rest are out-of-sample queries.
  const size_t d = all.cols();
  w.base = Matrix(spec.num_base, d);
  std::memcpy(w.base.data(), all.data(), spec.num_base * d * sizeof(float));
  w.queries = Matrix(spec.num_queries, d);
  std::memcpy(w.queries.data(), all.Row(spec.num_base),
              spec.num_queries * d * sizeof(float));

  w.ground_truth = BruteForceKnn(w.base, w.queries, spec.gt_k);
  w.knn_matrix = BuildKnnMatrix(w.base, spec.knn_k);
  return w;
}

}  // namespace usp
