#include "dataset/io.h"

#include <cstdio>
#include <memory>

namespace usp {

namespace {
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;
}  // namespace

StatusOr<Matrix> ReadFvecs(const std::string& path, size_t max_rows) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open " + path);
  std::vector<float> data;
  size_t rows = 0;
  int32_t dim = -1;
  for (;;) {
    int32_t this_dim = 0;
    if (std::fread(&this_dim, sizeof(int32_t), 1, f.get()) != 1) break;
    if (this_dim <= 0) return Status::IoError("bad dimension in " + path);
    if (dim < 0) {
      dim = this_dim;
    } else if (this_dim != dim) {
      return Status::IoError("ragged fvecs records in " + path);
    }
    const size_t offset = data.size();
    data.resize(offset + static_cast<size_t>(dim));
    if (std::fread(data.data() + offset, sizeof(float),
                   static_cast<size_t>(dim),
                   f.get()) != static_cast<size_t>(dim)) {
      return Status::IoError("truncated fvecs record in " + path);
    }
    ++rows;
    if (max_rows > 0 && rows >= max_rows) break;
  }
  if (rows == 0) return Status::IoError("empty fvecs file " + path);
  return Matrix(rows, static_cast<size_t>(dim), std::move(data));
}

Status WriteFvecs(const std::string& path, const Matrix& m) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open " + path + " for writing");
  const int32_t dim = static_cast<int32_t>(m.cols());
  for (size_t i = 0; i < m.rows(); ++i) {
    if (std::fwrite(&dim, sizeof(int32_t), 1, f.get()) != 1 ||
        std::fwrite(m.Row(i), sizeof(float), m.cols(), f.get()) != m.cols()) {
      return Status::IoError("short write to " + path);
    }
  }
  return Status::Ok();
}

StatusOr<std::vector<std::vector<int32_t>>> ReadIvecs(const std::string& path,
                                                      size_t max_rows) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) return Status::IoError("cannot open " + path);
  std::vector<std::vector<int32_t>> rows;
  for (;;) {
    int32_t dim = 0;
    if (std::fread(&dim, sizeof(int32_t), 1, f.get()) != 1) break;
    if (dim <= 0) return Status::IoError("bad dimension in " + path);
    std::vector<int32_t> row(static_cast<size_t>(dim));
    if (std::fread(row.data(), sizeof(int32_t), row.size(), f.get()) !=
        row.size()) {
      return Status::IoError("truncated ivecs record in " + path);
    }
    rows.push_back(std::move(row));
    if (max_rows > 0 && rows.size() >= max_rows) break;
  }
  if (rows.empty()) return Status::IoError("empty ivecs file " + path);
  return rows;
}

Status WriteIvecs(const std::string& path,
                  const std::vector<std::vector<int32_t>>& rows) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) return Status::IoError("cannot open " + path + " for writing");
  for (const auto& row : rows) {
    const int32_t dim = static_cast<int32_t>(row.size());
    if (std::fwrite(&dim, sizeof(int32_t), 1, f.get()) != 1 ||
        std::fwrite(row.data(), sizeof(int32_t), row.size(), f.get()) !=
            row.size()) {
      return Status::IoError("short write to " + path);
    }
  }
  return Status::Ok();
}

}  // namespace usp
