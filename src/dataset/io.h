// Readers/writers for the TEXMEX .fvecs/.ivecs formats used by the ANN
// benchmark datasets (SIFT1M etc.), so real datasets drop into any experiment
// in place of the synthetic generators.
#ifndef USP_DATASET_IO_H_
#define USP_DATASET_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/matrix.h"
#include "util/status.h"

namespace usp {

/// Reads an .fvecs file (each record: int32 dim then dim floats). `max_rows`
/// of 0 means read everything.
StatusOr<Matrix> ReadFvecs(const std::string& path, size_t max_rows = 0);

/// Writes a matrix in .fvecs format.
Status WriteFvecs(const std::string& path, const Matrix& m);

/// Reads an .ivecs file into row-major int vectors of uniform length.
StatusOr<std::vector<std::vector<int32_t>>> ReadIvecs(const std::string& path,
                                                      size_t max_rows = 0);

/// Writes uniform-length int vectors in .ivecs format.
Status WriteIvecs(const std::string& path,
                  const std::vector<std::vector<int32_t>>& rows);

}  // namespace usp

#endif  // USP_DATASET_IO_H_
