#include "dataset/synthetic.h"

#include <algorithm>
#include <cmath>

namespace usp {

LabeledDataset MakeGaussianMixture(size_t n, size_t d, size_t num_clusters,
                                   float center_range, float spread,
                                   uint64_t seed) {
  USP_CHECK(num_clusters > 0);
  Rng rng(seed);
  Matrix centers = Matrix::RandomUniform(num_clusters, d, &rng, 0.0f,
                                         center_range);
  LabeledDataset ds;
  ds.points = Matrix(n, d);
  ds.labels.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t c = static_cast<uint32_t>(rng.UniformInt(num_clusters));
    ds.labels[i] = c;
    float* row = ds.points.Row(i);
    const float* center = centers.Row(c);
    for (size_t j = 0; j < d; ++j) {
      row[j] = center[j] + spread * static_cast<float>(rng.Gaussian());
    }
  }
  return ds;
}

Matrix MakeSiftLike(size_t n, uint64_t seed) {
  // Overlapping 128-d mixture shaped like SIFT descriptors (non-negative,
  // bounded). Cluster spread is chosen so neighborhoods straddle cluster
  // boundaries, and 20% of points are bridges interpolated between two
  // cluster centers — that boundary mass is what separates learned partitions
  // from spherical K-means in the paper's evaluation.
  constexpr size_t kDim = 128;
  constexpr size_t kClusters = 96;
  Rng rng(seed);
  Matrix centers = Matrix::RandomUniform(kClusters, kDim, &rng, 0.0f, 60.0f);
  Matrix points(n, kDim);
  for (size_t i = 0; i < n; ++i) {
    float* row = points.Row(i);
    const size_t c1 = rng.UniformInt(kClusters);
    if (rng.Uniform() < 0.2) {
      // Bridge point between two clusters.
      const size_t c2 = rng.UniformInt(kClusters);
      const float t = rng.UniformFloat(0.2f, 0.8f);
      const float* a = centers.Row(c1);
      const float* b = centers.Row(c2);
      for (size_t j = 0; j < kDim; ++j) {
        row[j] = (1.0f - t) * a[j] + t * b[j] +
                 10.0f * static_cast<float>(rng.Gaussian());
      }
    } else {
      const float* a = centers.Row(c1);
      for (size_t j = 0; j < kDim; ++j) {
        row[j] = a[j] + 16.0f * static_cast<float>(rng.Gaussian());
      }
    }
    // Banana warp per cluster: curvature couples two dimensions, bending the
    // cluster so its optimal boundary is non-convex.
    const size_t wa = c1 % kDim, wb = (c1 * 37 + 11) % kDim;
    row[wb] += 0.015f * row[wa] * row[wa] - 8.0f;
    for (size_t j = 0; j < kDim; ++j) {
      row[j] = std::clamp(row[j], 0.0f, 255.0f);
    }
  }
  return points;
}

Matrix MakeMnistLike(size_t n, uint64_t seed) {
  // 10 "digit" clusters in 784-d. Each cluster activates a sparse template of
  // ~150 coordinates (strokes); remaining coordinates stay near zero
  // (background pixels).
  constexpr size_t kDim = 784;
  constexpr size_t kClasses = 10;
  constexpr size_t kActive = 150;
  Rng rng(seed);
  // Per-class templates.
  Matrix templates = Matrix::Zeros(kClasses, kDim);
  for (size_t c = 0; c < kClasses; ++c) {
    auto active = rng.SampleWithoutReplacement(kDim, kActive);
    for (uint32_t j : active) {
      templates(c, j) = rng.UniformFloat(100.0f, 255.0f);
    }
  }
  Matrix points(n, kDim);
  for (size_t i = 0; i < n; ++i) {
    const size_t c = rng.UniformInt(kClasses);
    float* row = points.Row(i);
    const float* tpl = templates.Row(c);
    for (size_t j = 0; j < kDim; ++j) {
      float v = tpl[j];
      if (v > 0.0f) {
        v += 25.0f * static_cast<float>(rng.Gaussian());
      } else if (rng.Uniform() < 0.02) {
        v = rng.UniformFloat(0.0f, 60.0f);  // stray noise pixel
      }
      row[j] = std::clamp(v, 0.0f, 255.0f);
    }
  }
  return points;
}

LabeledDataset MakeMoons(size_t n, float noise, uint64_t seed) {
  Rng rng(seed);
  LabeledDataset ds;
  ds.points = Matrix(n, 2);
  ds.labels.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const bool second = (i % 2 == 1);
    const double t = M_PI * rng.Uniform();
    double x, y;
    if (!second) {
      x = std::cos(t);
      y = std::sin(t);
    } else {
      x = 1.0 - std::cos(t);
      y = 0.5 - std::sin(t);
    }
    ds.points(i, 0) = static_cast<float>(x) +
                      noise * static_cast<float>(rng.Gaussian());
    ds.points(i, 1) = static_cast<float>(y) +
                      noise * static_cast<float>(rng.Gaussian());
    ds.labels[i] = second ? 1 : 0;
  }
  return ds;
}

LabeledDataset MakeCircles(size_t n, float noise, float factor, uint64_t seed) {
  USP_CHECK(factor > 0.0f && factor < 1.0f);
  Rng rng(seed);
  LabeledDataset ds;
  ds.points = Matrix(n, 2);
  ds.labels.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const bool inner = (i % 2 == 1);
    const double t = 2.0 * M_PI * rng.Uniform();
    const double r = inner ? factor : 1.0;
    ds.points(i, 0) = static_cast<float>(r * std::cos(t)) +
                      noise * static_cast<float>(rng.Gaussian());
    ds.points(i, 1) = static_cast<float>(r * std::sin(t)) +
                      noise * static_cast<float>(rng.Gaussian());
    ds.labels[i] = inner ? 1 : 0;
  }
  return ds;
}

LabeledDataset MakeClassification(size_t n, size_t d, size_t num_classes,
                                  float class_sep, uint64_t seed) {
  Rng rng(seed);
  // Class centers on a scaled hypercube-ish lattice, then a shared random
  // linear transform to create anisotropic, overlapping clusters (the aspect
  // of make_classification that trips convex clustering methods).
  Matrix centers(num_classes, d);
  for (size_t c = 0; c < num_classes; ++c) {
    for (size_t j = 0; j < d; ++j) {
      centers(c, j) = class_sep * (rng.Uniform() < 0.5 ? -1.0f : 1.0f) *
                      rng.UniformFloat(0.75f, 1.25f);
    }
  }
  Matrix transform = Matrix::RandomGaussian(d, d, &rng, 0.0f,
                                            1.0f / std::sqrt(float(d)));
  // Bias the transform towards identity so clusters stretch but stay apart.
  for (size_t j = 0; j < d; ++j) transform(j, j) += 1.0f;

  LabeledDataset ds;
  ds.points = Matrix(n, d);
  ds.labels.resize(n);
  std::vector<float> raw(d);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t c = static_cast<uint32_t>(rng.UniformInt(num_classes));
    ds.labels[i] = c;
    for (size_t j = 0; j < d; ++j) {
      raw[j] = centers(c, j) + static_cast<float>(rng.Gaussian());
    }
    float* row = ds.points.Row(i);
    for (size_t j = 0; j < d; ++j) {
      float acc = 0.0f;
      for (size_t p = 0; p < d; ++p) acc += raw[p] * transform(p, j);
      row[j] = acc;
    }
  }
  return ds;
}

}  // namespace usp
