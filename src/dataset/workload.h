// An evaluation workload: base points, held-out queries, exact ground truth,
// and the k'-NN matrix the USP offline phase consumes. Mirrors the ANN
// benchmark protocol (queries are not present in the base set).
#ifndef USP_DATASET_WORKLOAD_H_
#define USP_DATASET_WORKLOAD_H_

#include <cstdint>
#include <string>

#include "knn/brute_force.h"
#include "tensor/matrix.h"

namespace usp {

/// Which generator backs the workload.
enum class WorkloadKind {
  kSiftLike,   ///< 128-d clustered, SIFT-shaped
  kMnistLike,  ///< 784-d sparse clustered, MNIST-shaped
  kGaussian,   ///< generic isotropic mixture
};

/// Everything an experiment needs for one dataset.
struct Workload {
  std::string name;
  Matrix base;             ///< n x d dataset X
  Matrix queries;          ///< out-of-sample query points
  KnnResult ground_truth;  ///< exact k-NN of each query in `base`
  KnnResult knn_matrix;    ///< k'-NN matrix of `base` (paper Sec. 4.2.1)
};

/// Parameters for MakeWorkload.
struct WorkloadSpec {
  WorkloadKind kind = WorkloadKind::kSiftLike;
  size_t num_base = 8000;
  size_t num_queries = 500;
  size_t gt_k = 10;       ///< neighbors per query in ground truth (k)
  size_t knn_k = 10;      ///< neighbors per base point in the k'-NN matrix (k')
  uint64_t seed = 42;
};

/// Generates base + queries from one distribution, then computes exact ground
/// truth and the k'-NN matrix. Deterministic in `spec.seed`.
Workload MakeWorkload(const WorkloadSpec& spec);

}  // namespace usp

#endif  // USP_DATASET_WORKLOAD_H_
