// Chunked, bounded-memory access to vector datasets. ChunkStream is the
// abstraction the out-of-core pipeline (baselines/kmeans.h mini-batch
// training, serve/out_of_core_builder.h) is written against: FvecsReader
// streams a TEXMEX .fvecs file through a reused buffer, MatrixStream adapts
// an in-memory matrix so the same pipeline can run on both sources with
// identical chunk boundaries — the property the out-of-core bit-identity
// tests rest on. The samplers draw training subsets row-wise, so the sample
// a stream yields is independent of the chunk size it is read with.
#ifndef USP_DATASET_FVECS_STREAM_H_
#define USP_DATASET_FVECS_STREAM_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "tensor/matrix.h"
#include "util/status.h"

namespace usp {

/// Sequential row-chunk source over a fixed-dimension dataset. One stream can
/// be re-read (epochs) via Reset. NextChunk returns a view of up to max_rows
/// rows valid until the next NextChunk/Reset call; a 0-row view means the
/// stream is exhausted.
class ChunkStream {
 public:
  virtual ~ChunkStream() = default;

  /// Row dimensionality.
  virtual size_t dim() const = 0;

  /// Total rows in the stream (known up front for both backends).
  virtual size_t num_rows() const = 0;

  /// Rewinds to the first row.
  virtual Status Reset() = 0;

  /// Reads up to `max_rows` rows (> 0) into an internal reused buffer. The
  /// returned view is invalidated by the next NextChunk/Reset. Returns a
  /// 0-row view at end of stream, and a Status on malformed input (truncated
  /// or ragged records discovered mid-chunk).
  virtual StatusOr<MatrixView> NextChunk(size_t max_rows) = 0;
};

/// Streams an .fvecs file (per record: int32 dim then dim floats) chunk by
/// chunk. Open validates the shape once — the dimension from the first
/// record, the row count from the file size (a file truncated mid-record
/// fails here) — and rows come out byte-identical to ReadFvecs
/// (dataset/io.h). The read buffer is allocated to the largest chunk
/// requested and reused, so memory stays O(chunk), never O(n).
class FvecsReader : public ChunkStream {
 public:
  static StatusOr<FvecsReader> Open(const std::string& path);

  FvecsReader(FvecsReader&&) = default;
  FvecsReader& operator=(FvecsReader&&) = default;

  size_t dim() const override { return dim_; }
  size_t num_rows() const override { return num_rows_; }
  const std::string& path() const { return path_; }

  Status Reset() override;
  StatusOr<MatrixView> NextChunk(size_t max_rows) override;

 private:
  FvecsReader() = default;

  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f != nullptr) std::fclose(f);
    }
  };

  std::string path_;
  std::unique_ptr<std::FILE, FileCloser> file_;
  size_t dim_ = 0;
  size_t num_rows_ = 0;
  size_t cursor_ = 0;           ///< rows consumed since Reset
  std::vector<float> buffer_;   ///< reused chunk storage
};

/// In-memory ChunkStream over a MatrixView (which must outlive the stream).
/// Chunks are zero-copy views into the matrix.
class MatrixStream : public ChunkStream {
 public:
  explicit MatrixStream(MatrixView data) : data_(data) {}

  size_t dim() const override { return data_.cols(); }
  size_t num_rows() const override { return data_.rows(); }

  Status Reset() override {
    cursor_ = 0;
    return Status::Ok();
  }

  StatusOr<MatrixView> NextChunk(size_t max_rows) override;

 private:
  MatrixView data_;
  size_t cursor_ = 0;
};

/// Uniform sample of min(sample_rows, stream rows) rows via reservoir
/// sampling (Algorithm R). Each row's fate depends only on its position and
/// `seed`, never on chunk boundaries, so a disk stream and an in-memory
/// stream over the same rows yield bit-identical samples. Rewinds the stream
/// first; errors on an empty stream.
StatusOr<Matrix> ReservoirSample(ChunkStream* stream, size_t sample_rows,
                                 uint64_t seed);

/// Every stride-th row (0, stride, 2*stride, ...), capped at `max_rows` rows
/// (0 = uncapped). Deterministic and chunk-independent by construction.
StatusOr<Matrix> StridedSample(ChunkStream* stream, size_t stride,
                               size_t max_rows = 0);

/// Appending .fvecs writer, the chunk-wise counterpart of WriteFvecs: large
/// synthetic bases are generated chunk by chunk without ever materializing
/// the full matrix. All appends must share one dimension; Close flushes.
class FvecsWriter {
 public:
  explicit FvecsWriter(const std::string& path);
  ~FvecsWriter();
  FvecsWriter(const FvecsWriter&) = delete;
  FvecsWriter& operator=(const FvecsWriter&) = delete;

  bool ok() const { return file_ != nullptr && !failed_; }

  /// Appends `rows` as fvecs records.
  Status Append(MatrixView rows);

  /// Flushes and closes; returns the first error if any write failed.
  Status Close();

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  bool failed_ = false;
  size_t dim_ = 0;  ///< fixed by the first append
};

}  // namespace usp

#endif  // USP_DATASET_FVECS_STREAM_H_
