#include "eval/sweep.h"

namespace usp {

std::vector<SweepPoint> ProbeSweep(
    const std::function<BatchSearchResult(size_t)>& search,
    const std::vector<size_t>& probe_counts,
    const std::vector<uint32_t>& truth, size_t truth_k) {
  std::vector<SweepPoint> curve;
  curve.reserve(probe_counts.size());
  for (size_t probes : probe_counts) {
    const BatchSearchResult result = search(probes);
    SweepPoint point;
    point.probes = probes;
    if (result.stats && !result.stats->candidates_scored.empty()) {
      // Prefer the per-query instrumentation: candidates_scored is the
      // post-filter |C(q)| of Eq. 4, and nodes_visited tells us whether the
      // counts are really traversal counts (HNSW's scored == visited
      // exception) that would silently skew a cross-index comparison.
      const size_t nq = result.stats->candidates_scored.size();
      double sum = 0.0;
      for (size_t q = 0; q < nq; ++q) {
        sum += static_cast<double>(result.stats->candidates_scored[q]);
        point.counts_include_visits |= result.stats->nodes_visited[q] > 0;
      }
      point.mean_candidates = sum / static_cast<double>(nq);
    } else {
      point.mean_candidates = result.MeanCandidates();
    }
    point.accuracy = KnnAccuracy(result, truth, truth_k);
    curve.push_back(point);
  }
  return curve;
}

std::vector<SweepPoint> ProbeSweep(const PartitionIndex& index,
                                   const Matrix& queries, size_t k,
                                   const std::vector<size_t>& probe_counts,
                                   const std::vector<uint32_t>& truth,
                                   size_t truth_k, size_t num_threads) {
  const Matrix scores = index.ScoreQueries(queries);
  SearchOptions options;
  options.k = k;
  options.num_threads = num_threads;
  return ProbeSweep(
      [&](size_t probes) {
        SearchOptions swept = options;
        swept.budget = probes;
        return index.SearchBatchWithScores(queries, scores, swept);
      },
      probe_counts, truth, truth_k);
}

std::vector<size_t> DefaultProbeCounts(size_t max_probes) {
  std::vector<size_t> counts;
  size_t p = 1;
  while (p <= max_probes && counts.size() < 8) {
    counts.push_back(p);
    ++p;
  }
  while (p <= max_probes) {
    counts.push_back(p);
    p = p * 3 / 2 + 1;
  }
  if (counts.empty() || counts.back() != max_probes) {
    counts.push_back(max_probes);
  }
  return counts;
}

double CandidatesAtAccuracy(const std::vector<SweepPoint>& curve,
                            double target_accuracy) {
  for (size_t i = 0; i < curve.size(); ++i) {
    if (curve[i].accuracy >= target_accuracy) {
      if (i == 0) return curve[0].mean_candidates;
      const SweepPoint& lo = curve[i - 1];
      const SweepPoint& hi = curve[i];
      const double span = hi.accuracy - lo.accuracy;
      if (span <= 1e-12) return hi.mean_candidates;
      const double t = (target_accuracy - lo.accuracy) / span;
      return lo.mean_candidates + t * (hi.mean_candidates - lo.mean_candidates);
    }
  }
  return -1.0;
}

double AccuracyAtCandidates(const std::vector<SweepPoint>& curve,
                            double candidate_budget) {
  if (curve.empty()) return 0.0;
  if (candidate_budget <= curve.front().mean_candidates) {
    return curve.front().accuracy;
  }
  for (size_t i = 1; i < curve.size(); ++i) {
    if (curve[i].mean_candidates >= candidate_budget) {
      const SweepPoint& lo = curve[i - 1];
      const SweepPoint& hi = curve[i];
      const double span = hi.mean_candidates - lo.mean_candidates;
      if (span <= 1e-12) return hi.accuracy;
      const double t = (candidate_budget - lo.mean_candidates) / span;
      return lo.accuracy + t * (hi.accuracy - lo.accuracy);
    }
  }
  return curve.back().accuracy;
}

}  // namespace usp
