// Evaluation harness: accuracy-vs-candidate-set-size curves (the axes of
// Figs. 5-7) and fixed-accuracy candidate lookups (Table 4).
#ifndef USP_EVAL_SWEEP_H_
#define USP_EVAL_SWEEP_H_

#include <functional>
#include <vector>

#include "core/partition_index.h"

namespace usp {

/// One point on an accuracy/candidates trade-off curve.
struct SweepPoint {
  size_t probes = 0;
  double mean_candidates = 0.0;
  double accuracy = 0.0;

  /// True when mean_candidates counts graph *visits* rather than
  /// shortlist candidates: HNSW scores every node it visits (navigation
  /// needs the distance), so its candidate_counts are traversal counts and
  /// overstate the "candidate set size" a partition-based point reports.
  /// Cross-index S(R) comparisons (Fig. 7 style) should not mix flagged and
  /// unflagged points on one axis without noting the semantics.
  bool counts_include_visits = false;
};

/// Runs `search(probes)` for each probe count in `probe_counts` and scores
/// k-NN accuracy against ground truth. When the result carries a SearchStats
/// block (SearchOptions::stats), the S(R) axis is taken from
/// stats->candidates_scored — the per-query |C(q)| of Eq. 4 — and points
/// whose counts are really graph-visit counts (nonzero nodes_visited, i.e.
/// HNSW) are flagged via counts_include_visits; otherwise it falls back to
/// MeanCandidates() unflagged.
std::vector<SweepPoint> ProbeSweep(
    const std::function<BatchSearchResult(size_t)>& search,
    const std::vector<size_t>& probe_counts,
    const std::vector<uint32_t>& truth, size_t truth_k);

/// Sweeps a PartitionIndex directly: scores every query exactly once, then
/// reuses the scores across all probe counts through the batched parallel
/// search path. `num_threads` caps the per-query search sharding (0 = pool
/// default, 1 = serial; the single scoring pass still uses the pool's GEMM);
/// the curve is identical at every setting.
std::vector<SweepPoint> ProbeSweep(const PartitionIndex& index,
                                   const Matrix& queries, size_t k,
                                   const std::vector<size_t>& probe_counts,
                                   const std::vector<uint32_t>& truth,
                                   size_t truth_k, size_t num_threads = 0);

/// 1, 2, ..., up to `max_probes` (dense for small counts, then doubling).
std::vector<size_t> DefaultProbeCounts(size_t max_probes);

/// Linearly interpolates the candidate-set size at which the curve reaches
/// `target_accuracy`. Returns a negative value when the curve never gets
/// there. Input points must be sorted by ascending candidates (ProbeSweep
/// output order).
double CandidatesAtAccuracy(const std::vector<SweepPoint>& curve,
                            double target_accuracy);

/// Inverse lookup: linearly interpolates the accuracy a curve reaches at a
/// given candidate budget (Table 4's fixed-budget comparison). Clamps to the
/// first point's accuracy below the curve and to the last point's accuracy
/// beyond it. Input points must be sorted by ascending candidates.
double AccuracyAtCandidates(const std::vector<SweepPoint>& curve,
                            double candidate_budget);

}  // namespace usp

#endif  // USP_EVAL_SWEEP_H_
