// Evaluation harness: accuracy-vs-candidate-set-size curves (the axes of
// Figs. 5-7) and fixed-accuracy candidate lookups (Table 4).
#ifndef USP_EVAL_SWEEP_H_
#define USP_EVAL_SWEEP_H_

#include <functional>
#include <vector>

#include "core/partition_index.h"

namespace usp {

/// One point on an accuracy/candidates trade-off curve.
struct SweepPoint {
  size_t probes = 0;
  double mean_candidates = 0.0;
  double accuracy = 0.0;
};

/// Runs `search(probes)` for each probe count in `probe_counts` and scores
/// k-NN accuracy against ground truth.
std::vector<SweepPoint> ProbeSweep(
    const std::function<BatchSearchResult(size_t)>& search,
    const std::vector<size_t>& probe_counts,
    const std::vector<uint32_t>& truth, size_t truth_k);

/// 1, 2, ..., up to `max_probes` (dense for small counts, then doubling).
std::vector<size_t> DefaultProbeCounts(size_t max_probes);

/// Linearly interpolates the candidate-set size at which the curve reaches
/// `target_accuracy`. Returns a negative value when the curve never gets
/// there. Input points must be sorted by ascending candidates (ProbeSweep
/// output order).
double CandidatesAtAccuracy(const std::vector<SweepPoint>& curve,
                            double target_accuracy);

}  // namespace usp

#endif  // USP_EVAL_SWEEP_H_
