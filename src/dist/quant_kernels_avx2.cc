// AVX2 quantized kernel set. Compiled via per-function target attributes so
// the rest of the library keeps its baseline ISA; GetQuantKernels() only
// hands this set out after __builtin_cpu_supports confirms avx2 at runtime.
//
// pq4_scan is the fast-scan core: per subspace, one _mm256_shuffle_epi8
// resolves all 32 codes of a block against the 16-entry uint8 LUT held in a
// register (low nibbles in lane 0, high nibbles in lane 1), and two uint16
// accumulators (even/odd byte positions) absorb the scores. The sq8 kernels
// widen uint8 operands to 16 bits and pair-sum products with
// _mm256_madd_epi16. All sums are exact integers, so the scalar set in
// quant_kernels_scalar.cc is bitwise identical by construction.
#include "dist/quant_kernels.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

namespace usp {
namespace {

__attribute__((target("avx2"))) inline uint32_t ReduceU32(__m256i acc) {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_srli_si128(s, 8));
  s = _mm_add_epi32(s, _mm_srli_si128(s, 4));
  return static_cast<uint32_t>(_mm_cvtsi128_si32(s));
}

__attribute__((target("avx2"))) void Pq4ScanAvx2(const uint8_t* blocks,
                                                 const uint8_t* luts, size_t m,
                                                 size_t num_blocks,
                                                 uint16_t* out) {
  const __m128i nibble_mask = _mm_set1_epi8(0x0F);
  const __m256i byte_mask = _mm256_set1_epi16(0x00FF);
  for (size_t b = 0; b < num_blocks; ++b) {
    const uint8_t* block = blocks + b * m * 16;
    // Even/odd byte-position accumulators: acc_even holds vectors
    // {0,2,..,14 | 16,18,..,30} as uint16, acc_odd the odd vectors.
    __m256i acc_even = _mm256_setzero_si256();
    __m256i acc_odd = _mm256_setzero_si256();
    for (size_t s = 0; s < m; ++s) {
      const __m128i packed = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(block + s * 16));
      const __m128i lo = _mm_and_si128(packed, nibble_mask);
      const __m128i hi =
          _mm_and_si128(_mm_srli_epi16(packed, 4), nibble_mask);
      const __m256i codes =
          _mm256_inserti128_si256(_mm256_castsi128_si256(lo), hi, 1);
      const __m256i lut = _mm256_broadcastsi128_si256(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(luts + s * 16)));
      const __m256i scores = _mm256_shuffle_epi8(lut, codes);
      acc_even =
          _mm256_add_epi16(acc_even, _mm256_and_si256(scores, byte_mask));
      acc_odd = _mm256_add_epi16(acc_odd, _mm256_srli_epi16(scores, 8));
    }
    // De-interleave back to vector order: unpack gives
    // {v0..v7 | v16..v23} and {v8..v15 | v24..v31}.
    const __m256i lo16 = _mm256_unpacklo_epi16(acc_even, acc_odd);
    const __m256i hi16 = _mm256_unpackhi_epi16(acc_even, acc_odd);
    uint16_t* scores = out + b * kPq4BlockSize;
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(scores),
                        _mm256_permute2x128_si256(lo16, hi16, 0x20));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(scores + 16),
                        _mm256_permute2x128_si256(lo16, hi16, 0x31));
  }
}

__attribute__((target("avx2"))) uint32_t Sq8L2Avx2(const uint8_t* x,
                                                   const uint8_t* y,
                                                   size_t d) {
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= d; i += 32) {
    const __m256i vx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i vy =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    // |x - y| per byte: saturating subtract both directions, OR.
    const __m256i diff = _mm256_or_si256(_mm256_subs_epu8(vx, vy),
                                         _mm256_subs_epu8(vy, vx));
    const __m256i lo = _mm256_unpacklo_epi8(diff, zero);
    const __m256i hi = _mm256_unpackhi_epi8(diff, zero);
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(lo, lo));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(hi, hi));
  }
  uint32_t total = ReduceU32(acc);
  for (; i < d; ++i) {
    const int32_t diff = static_cast<int32_t>(x[i]) - static_cast<int32_t>(y[i]);
    total += static_cast<uint32_t>(diff * diff);
  }
  return total;
}

__attribute__((target("avx2"))) uint32_t Sq8DotAvx2(const uint8_t* x,
                                                    const uint8_t* y,
                                                    size_t d) {
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= d; i += 32) {
    const __m256i vx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i vy =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    const __m256i xlo = _mm256_unpacklo_epi8(vx, zero);
    const __m256i xhi = _mm256_unpackhi_epi8(vx, zero);
    const __m256i ylo = _mm256_unpacklo_epi8(vy, zero);
    const __m256i yhi = _mm256_unpackhi_epi8(vy, zero);
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xlo, ylo));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(xhi, yhi));
  }
  uint32_t total = ReduceU32(acc);
  for (; i < d; ++i) {
    total += static_cast<uint32_t>(x[i]) * static_cast<uint32_t>(y[i]);
  }
  return total;
}

__attribute__((target("avx2"))) inline void PrefetchCodeRow(const uint8_t* row,
                                                            size_t d) {
  __builtin_prefetch(row);
  if (d > 64) __builtin_prefetch(row + 64);
}

__attribute__((target("avx2"))) void Sq8ScanL2Avx2(const uint8_t* query,
                                                   const uint8_t* rows,
                                                   size_t count, size_t d,
                                                   uint32_t* out) {
  for (size_t r = 0; r < count; ++r) {
    if (r + 1 < count) PrefetchCodeRow(rows + (r + 1) * d, d);
    out[r] = Sq8L2Avx2(query, rows + r * d, d);
  }
}

__attribute__((target("avx2"))) void Sq8ScanDotAvx2(const uint8_t* query,
                                                    const uint8_t* rows,
                                                    size_t count, size_t d,
                                                    uint32_t* out) {
  for (size_t r = 0; r < count; ++r) {
    if (r + 1 < count) PrefetchCodeRow(rows + (r + 1) * d, d);
    out[r] = Sq8DotAvx2(query, rows + r * d, d);
  }
}

bool CpuHasAvx2() { return __builtin_cpu_supports("avx2"); }

}  // namespace

const QuantKernels* Avx2QuantKernelsOrNull() {
  static const QuantKernels kernels = {
      "avx2",      Pq4ScanAvx2,   Sq8L2Avx2,
      Sq8DotAvx2,  Sq8ScanL2Avx2, Sq8ScanDotAvx2,
  };
  static const bool supported = CpuHasAvx2();
  return supported ? &kernels : nullptr;
}

}  // namespace usp

#else  // non-x86: the scalar set is the only implementation.

namespace usp {
const QuantKernels* Avx2QuantKernelsOrNull() { return nullptr; }
}  // namespace usp

#endif
