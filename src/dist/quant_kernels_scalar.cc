// Portable quantized kernel set. Every kernel is an exact integer sum, so
// this set is bitwise identical to quant_kernels_avx2.cc by construction —
// there is no floating-point lane structure to mirror, only the same
// wraparound arithmetic (uint16 accumulation for pq4, uint32 for sq8).
#include "dist/quant_kernels.h"

namespace usp {
namespace {

void Pq4ScanScalar(const uint8_t* blocks, const uint8_t* luts, size_t m,
                   size_t num_blocks, uint16_t* out) {
  for (size_t b = 0; b < num_blocks; ++b) {
    const uint8_t* block = blocks + b * m * 16;
    uint16_t* scores = out + b * kPq4BlockSize;
    for (size_t t = 0; t < kPq4BlockSize; ++t) scores[t] = 0;
    for (size_t s = 0; s < m; ++s) {
      const uint8_t* packed = block + s * 16;
      const uint8_t* lut = luts + s * 16;
      for (size_t j = 0; j < 16; ++j) {
        scores[j] = static_cast<uint16_t>(scores[j] + lut[packed[j] & 0x0F]);
        scores[j + 16] =
            static_cast<uint16_t>(scores[j + 16] + lut[packed[j] >> 4]);
      }
    }
  }
}

uint32_t Sq8L2Scalar(const uint8_t* x, const uint8_t* y, size_t d) {
  uint32_t total = 0;
  for (size_t i = 0; i < d; ++i) {
    const int32_t diff = static_cast<int32_t>(x[i]) - static_cast<int32_t>(y[i]);
    total += static_cast<uint32_t>(diff * diff);
  }
  return total;
}

uint32_t Sq8DotScalar(const uint8_t* x, const uint8_t* y, size_t d) {
  uint32_t total = 0;
  for (size_t i = 0; i < d; ++i) {
    total += static_cast<uint32_t>(x[i]) * static_cast<uint32_t>(y[i]);
  }
  return total;
}

void Sq8ScanL2Scalar(const uint8_t* query, const uint8_t* rows, size_t count,
                     size_t d, uint32_t* out) {
  for (size_t r = 0; r < count; ++r) out[r] = Sq8L2Scalar(query, rows + r * d, d);
}

void Sq8ScanDotScalar(const uint8_t* query, const uint8_t* rows, size_t count,
                      size_t d, uint32_t* out) {
  for (size_t r = 0; r < count; ++r) {
    out[r] = Sq8DotScalar(query, rows + r * d, d);
  }
}

}  // namespace

const QuantKernels& ScalarQuantKernels() {
  static const QuantKernels kernels = {
      "scalar",      Pq4ScanScalar,   Sq8L2Scalar,
      Sq8DotScalar,  Sq8ScanL2Scalar, Sq8ScanDotScalar,
  };
  return kernels;
}

}  // namespace usp
