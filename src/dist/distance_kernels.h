// Low-level distance kernels behind every search path: 1-vs-1 distances,
// batched 1-vs-many scoring over contiguous rows (centroid/codebook scans),
// and gather-by-id scoring (candidate rerank). One implementation set is
// selected ONCE at process startup by runtime CPU detection:
//
//   - "avx2":   AVX2 + FMA vector kernels (x86-64 with both features)
//   - "scalar": portable fallback
//
// Set USP_FORCE_SCALAR=1 in the environment to pin the scalar set.
//
// Bit-compatibility contract: the scalar `squared_l2` and `dot` mirror the
// AVX2 arithmetic exactly — eight independent fused-multiply-add lanes
// (element i feeds lane i % 8) reduced by the fixed tree
// ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)) — so both sets produce bitwise
// identical results for identical inputs. `score_block_*` / `score_ids_*`
// apply the matching 1-vs-1 kernel per row and inherit the guarantee.
// tests/dist_test.cc enforces this across dims covering every SIMD tail.
#ifndef USP_DIST_DISTANCE_KERNELS_H_
#define USP_DIST_DISTANCE_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace usp {

/// Function table for one kernel implementation set. All pointers are
/// non-null. `d` is the vector dimensionality; rows are dense row-major.
struct DistanceKernels {
  const char* name;  ///< "scalar" or "avx2"

  /// ||x - y||^2.
  float (*squared_l2)(const float* x, const float* y, size_t d);

  /// <x, y>.
  float (*dot)(const float* x, const float* y, size_t d);

  /// out[r] = ||query - rows[r*d .. r*d+d)||^2 for r in [0, count).
  void (*score_block_l2)(const float* query, const float* rows, size_t count,
                         size_t d, float* out);

  /// out[r] = <query, rows[r*d ..]> for r in [0, count).
  void (*score_block_dot)(const float* query, const float* rows, size_t count,
                          size_t d, float* out);

  /// out[i] = ||query - base[ids[i]*d ..]||^2, software-prefetching the
  /// gathered rows a few ids ahead.
  void (*score_ids_l2)(const float* query, const float* base, size_t d,
                       const uint32_t* ids, size_t count, float* out);

  /// out[i] = <query, base[ids[i]*d ..]>, prefetched gather.
  void (*score_ids_dot)(const float* query, const float* base, size_t d,
                        const uint32_t* ids, size_t count, float* out);

  /// y[i] += alpha * x[i] for i in [0, n). GEMM inner loop. (No cross-set
  /// bit-compatibility promise: the vector path uses FMA contraction.)
  void (*axpy)(float alpha, const float* x, float* y, size_t n);
};

/// The portable fallback set (always available).
const DistanceKernels& ScalarKernels();

/// The AVX2+FMA set, or nullptr when not compiled in or the CPU lacks
/// AVX2/FMA. Exposed for tests and benchmarks.
const DistanceKernels* Avx2KernelsOrNull();

/// Selection policy: the AVX2 set when available and not `force_scalar`,
/// else the scalar set. Exposed so tests can exercise both branches without
/// re-launching the process.
const DistanceKernels& SelectKernels(bool force_scalar);

/// The process-wide kernel set, resolved once on first use from CPU
/// detection and the USP_FORCE_SCALAR environment variable.
const DistanceKernels& GetDistanceKernels();

}  // namespace usp

#endif  // USP_DIST_DISTANCE_KERNELS_H_
