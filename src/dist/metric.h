// Distance metrics served by the library. Every metric is expressed as a
// score to MINIMIZE so index code (top-k heaps, rerank, ground truth) is
// metric-agnostic: squared L2 stays as-is, inner product is negated, cosine
// becomes the cosine distance 1 - cos(q, x).
#ifndef USP_DIST_METRIC_H_
#define USP_DIST_METRIC_H_

namespace usp {

enum class Metric {
  kSquaredL2,     ///< ||q - x||^2 (the default; matches all prior behavior)
  kInnerProduct,  ///< -<q, x> (maximum inner product search)
  kCosine,        ///< 1 - <q, x> / (||q|| ||x||)
};

/// Human-readable metric name ("l2", "ip", "cosine").
inline const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kSquaredL2:
      return "l2";
    case Metric::kInnerProduct:
      return "ip";
    case Metric::kCosine:
      return "cosine";
  }
  return "unknown";
}

}  // namespace usp

#endif  // USP_DIST_METRIC_H_
