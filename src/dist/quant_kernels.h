// Quantized-domain distance kernels: the compressed counterparts of
// dist/distance_kernels.h. Two families share one dispatch table:
//
//   - pq4:  ScaNN/FAISS-style "fast scan" over 4-bit PQ codes. Codes are
//     packed in blocks of 32 vectors (quant/fastscan.h layout); the per-query
//     float ADC table is quantized to uint8 (16 entries per subspace) and the
//     AVX2 kernel scores 32 codes per subspace pass with one
//     _mm256_shuffle_epi8 table lookup — the register-resident LUT idiom that
//     makes PQ scanning compute-bound instead of memory-bound.
//   - sq8:  int8 scalar-quantized vectors (quant/sq8_index.h). L2 runs on
//     byte absolute differences widened to 16 bits and pair-summed with
//     madd_epi16 (the maddubs-family widening-multiply idiom); dot widens
//     both operands. Both are exact integer sums.
//
// Selection follows the DistanceKernels contract exactly: one set is chosen
// at process startup by runtime CPU detection, and USP_FORCE_SCALAR=1 pins
// the scalar set.
//
// Bit-compatibility contract: every kernel here computes an exact integer
// quantity (uint16 sums with wraparound for pq4, uint32 sums for sq8), so
// the scalar mirrors are bitwise identical to the AVX2 kernels by
// construction — no floating-point lane structure to replicate.
// tests/fastscan_test.cc enforces this across code counts covering every
// SIMD tail.
#ifndef USP_DIST_QUANT_KERNELS_H_
#define USP_DIST_QUANT_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace usp {

/// Codes per packed pq4 block (quant/fastscan.h packs two 4-bit codes per
/// byte, 16 bytes per subspace per block).
inline constexpr size_t kPq4BlockSize = 32;

/// Function table for one quantized kernel implementation set. All pointers
/// are non-null.
struct QuantKernels {
  const char* name;  ///< "scalar" or "avx2"

  /// Fast-scan ADC over packed 4-bit PQ codes. `blocks` holds `num_blocks`
  /// consecutive blocks, each of m * 16 bytes: subspace s of block b lives at
  /// blocks[(b * m + s) * 16], byte j packing code(vec j) in the low nibble
  /// and code(vec j + 16) in the high nibble. `luts` is the quantized ADC
  /// table, 16 uint8 entries per subspace (m * 16 bytes total). Writes
  /// num_blocks * 32 uint16 sums: out[b * 32 + t] = sum over s of
  /// luts[s * 16 + code(vec t of block b, s)], with uint16 wraparound (the
  /// LUT quantizer in quant/fastscan.h bounds sums below 2^16 for m <= 257).
  void (*pq4_scan)(const uint8_t* blocks, const uint8_t* luts, size_t m,
                   size_t num_blocks, uint16_t* out);

  /// Sum over d of (x[i] - y[i])^2 on uint8 codes (exact uint32).
  uint32_t (*sq8_l2)(const uint8_t* x, const uint8_t* y, size_t d);

  /// Sum over d of x[i] * y[i] on uint8 codes (exact uint32).
  uint32_t (*sq8_dot)(const uint8_t* x, const uint8_t* y, size_t d);

  /// out[r] = sq8_l2(query, rows + r * d) for r in [0, count).
  void (*sq8_scan_l2)(const uint8_t* query, const uint8_t* rows, size_t count,
                      size_t d, uint32_t* out);

  /// out[r] = sq8_dot(query, rows + r * d) for r in [0, count).
  void (*sq8_scan_dot)(const uint8_t* query, const uint8_t* rows, size_t count,
                       size_t d, uint32_t* out);
};

/// The portable fallback set (always available).
const QuantKernels& ScalarQuantKernels();

/// The AVX2 set, or nullptr when not compiled in or the CPU lacks AVX2.
/// Exposed for tests and benchmarks.
const QuantKernels* Avx2QuantKernelsOrNull();

/// Selection policy: the AVX2 set when available and not `force_scalar`,
/// else the scalar set. Exposed so tests can exercise both branches without
/// re-launching the process.
const QuantKernels& SelectQuantKernels(bool force_scalar);

/// The process-wide quantized kernel set, resolved once on first use from CPU
/// detection and the USP_FORCE_SCALAR environment variable.
const QuantKernels& GetQuantKernels();

}  // namespace usp

#endif  // USP_DIST_QUANT_KERNELS_H_
