// Portable kernel set. squared_l2/dot deliberately mirror the AVX2 lane
// structure (eight fused-multiply-add accumulators, element i -> lane i % 8,
// fixed reduction tree) so the scalar and vector sets agree bit-for-bit; see
// the contract in distance_kernels.h before changing any arithmetic here.
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "dist/distance_kernels.h"

namespace usp {
namespace {

constexpr size_t kLanes = 8;
constexpr size_t kPrefetchAhead = 4;  // gather lookahead, in rows

// Reduction tree shared by both kernel sets:
// ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)).
inline float ReduceLanes(const float* acc) {
  const float even = (acc[0] + acc[4]) + (acc[2] + acc[6]);
  const float odd = (acc[1] + acc[5]) + (acc[3] + acc[7]);
  return even + odd;
}

float SquaredL2Scalar(const float* x, const float* y, size_t d) {
  float acc[kLanes] = {0.0f};
  size_t i = 0;
  for (; i + kLanes <= d; i += kLanes) {
    for (size_t j = 0; j < kLanes; ++j) {
      const float diff = x[i + j] - y[i + j];
      acc[j] = std::fmaf(diff, diff, acc[j]);
    }
  }
  for (size_t j = 0; i < d; ++i, ++j) {
    const float diff = x[i] - y[i];
    acc[j] = std::fmaf(diff, diff, acc[j]);
  }
  return ReduceLanes(acc);
}

float DotScalar(const float* x, const float* y, size_t d) {
  float acc[kLanes] = {0.0f};
  size_t i = 0;
  for (; i + kLanes <= d; i += kLanes) {
    for (size_t j = 0; j < kLanes; ++j) {
      acc[j] = std::fmaf(x[i + j], y[i + j], acc[j]);
    }
  }
  for (size_t j = 0; i < d; ++i, ++j) {
    acc[j] = std::fmaf(x[i], y[i], acc[j]);
  }
  return ReduceLanes(acc);
}

void ScoreBlockL2Scalar(const float* query, const float* rows, size_t count,
                        size_t d, float* out) {
  for (size_t r = 0; r < count; ++r) {
    out[r] = SquaredL2Scalar(query, rows + r * d, d);
  }
}

void ScoreBlockDotScalar(const float* query, const float* rows, size_t count,
                         size_t d, float* out) {
  for (size_t r = 0; r < count; ++r) {
    out[r] = DotScalar(query, rows + r * d, d);
  }
}

void ScoreIdsL2Scalar(const float* query, const float* base, size_t d,
                      const uint32_t* ids, size_t count, float* out) {
  for (size_t i = 0; i < count; ++i) {
    if (i + kPrefetchAhead < count) {
      __builtin_prefetch(base + static_cast<size_t>(ids[i + kPrefetchAhead]) * d);
    }
    out[i] = SquaredL2Scalar(query, base + static_cast<size_t>(ids[i]) * d, d);
  }
}

void ScoreIdsDotScalar(const float* query, const float* base, size_t d,
                       const uint32_t* ids, size_t count, float* out) {
  for (size_t i = 0; i < count; ++i) {
    if (i + kPrefetchAhead < count) {
      __builtin_prefetch(base + static_cast<size_t>(ids[i + kPrefetchAhead]) * d);
    }
    out[i] = DotScalar(query, base + static_cast<size_t>(ids[i]) * d, d);
  }
}

void AxpyScalar(float alpha, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

}  // namespace

const DistanceKernels& ScalarKernels() {
  static const DistanceKernels kernels = {
      "scalar",         SquaredL2Scalar,  DotScalar,
      ScoreBlockL2Scalar, ScoreBlockDotScalar, ScoreIdsL2Scalar,
      ScoreIdsDotScalar, AxpyScalar,
  };
  return kernels;
}

}  // namespace usp
