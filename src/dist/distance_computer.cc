#include "dist/distance_computer.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/thread_pool.h"

namespace usp {

DistanceComputer::DistanceComputer(MatrixView base, Metric metric)
    : base_(base), metric_(metric), kernels_(&GetDistanceKernels()) {
  if (metric_ == Metric::kCosine) {
    // Parallel norm pass over the view (which may be mmap'd storage); cosine
    // computers are only built at index construction/load, never from inside
    // a ParallelFor body. Per-row results are thread-count independent.
    const size_t d = base_.cols();
    inv_norms_.resize(base_.rows());
    ParallelFor(base_.rows(), 64, [&](size_t begin, size_t end, size_t) {
      for (size_t i = begin; i < end; ++i) {
        const float* row = base_.Row(i);
        const float norm2 = kernels_->dot(row, row, d);
        inv_norms_[i] = norm2 > 0.0f ? 1.0f / std::sqrt(norm2) : 0.0f;
      }
    });
  }
}

const float* DistanceComputer::PrepareQuery(const float* query,
                                            std::vector<float>* scratch) const {
  if (metric_ != Metric::kCosine) return query;
  const size_t d = base_.cols();
  scratch->assign(query, query + d);
  const float norm = std::sqrt(kernels_->dot(query, query, d));
  if (norm > 0.0f) {
    const float inv = 1.0f / norm;
    for (size_t j = 0; j < d; ++j) (*scratch)[j] *= inv;
  }
  return scratch->data();
}

float DistanceComputer::Distance(const float* prepared_query,
                                 uint32_t id) const {
  const size_t d = base_.cols();
  const float* row = base_.Row(id);
  switch (metric_) {
    case Metric::kSquaredL2:
      return kernels_->squared_l2(prepared_query, row, d);
    case Metric::kInnerProduct:
      return -kernels_->dot(prepared_query, row, d);
    case Metric::kCosine:
      return 1.0f - kernels_->dot(prepared_query, row, d) * inv_norms_[id];
  }
  return 0.0f;
}

void DistanceComputer::ScoreIds(const float* prepared_query,
                                const uint32_t* ids, size_t count,
                                float* out) const {
  const size_t d = base_.cols();
  const float* data = base_.data();
  switch (metric_) {
    case Metric::kSquaredL2:
      kernels_->score_ids_l2(prepared_query, data, d, ids, count, out);
      return;
    case Metric::kInnerProduct:
      kernels_->score_ids_dot(prepared_query, data, d, ids, count, out);
      for (size_t i = 0; i < count; ++i) out[i] = -out[i];
      return;
    case Metric::kCosine:
      kernels_->score_ids_dot(prepared_query, data, d, ids, count, out);
      for (size_t i = 0; i < count; ++i) {
        out[i] = 1.0f - out[i] * inv_norms_[ids[i]];
      }
      return;
  }
}

void DistanceComputer::ScoreRange(const float* prepared_query,
                                  uint32_t first_id, size_t count,
                                  float* out) const {
  const size_t d = base_.cols();
  const float* rows = base_.Row(first_id);
  switch (metric_) {
    case Metric::kSquaredL2:
      kernels_->score_block_l2(prepared_query, rows, count, d, out);
      return;
    case Metric::kInnerProduct:
      kernels_->score_block_dot(prepared_query, rows, count, d, out);
      for (size_t i = 0; i < count; ++i) out[i] = -out[i];
      return;
    case Metric::kCosine:
      kernels_->score_block_dot(prepared_query, rows, count, d, out);
      for (size_t i = 0; i < count; ++i) {
        out[i] = 1.0f - out[i] * inv_norms_[first_id + i];
      }
      return;
  }
}

}  // namespace usp
