// Metric-aware distance evaluation against one base matrix. Owns the
// metric-specific preprocessing so index code stays metric-agnostic:
//
//   - kSquaredL2:     distance = ||q - x||^2            (no preprocessing)
//   - kInnerProduct:  distance = -<q, x>                (sign flip)
//   - kCosine:        distance = 1 - <q_hat, x> / ||x||  (query normalized by
//                     PrepareQuery; 1/||x|| cached per base row at build)
//
// All metrics minimize, so TopK / rerank / ground-truth code works unchanged.
#ifndef USP_DIST_DISTANCE_COMPUTER_H_
#define USP_DIST_DISTANCE_COMPUTER_H_

#include <cstdint>
#include <vector>

#include "dist/distance_kernels.h"
#include "dist/metric.h"
#include "tensor/matrix.h"

namespace usp {

/// Scores queries against rows of a fixed base matrix under one metric.
/// Holds a view of the base; the viewed storage (heap Matrix or mmap'd
/// container section) must outlive the computer. Construction is O(1) for L2
/// and inner product; cosine precomputes per-row inverse norms (rows with
/// zero norm score the neutral distance 1).
class DistanceComputer {
 public:
  DistanceComputer(MatrixView base, Metric metric);
  DistanceComputer(const Matrix* base, Metric metric)
      : DistanceComputer(MatrixView(*base), metric) {}

  Metric metric() const { return metric_; }
  MatrixView base() const { return base_; }

  /// Metric-specific query preprocessing, called once per query: for cosine,
  /// writes the unit-normalized query into *scratch and returns its data
  /// pointer (an all-zero query stays zero); other metrics return `query`
  /// unchanged. The returned pointer is valid while *scratch is alive and
  /// unmodified.
  const float* PrepareQuery(const float* query,
                            std::vector<float>* scratch) const;

  /// Distance (lower = closer) between a prepared query and base row `id`.
  float Distance(const float* prepared_query, uint32_t id) const;

  /// out[i] = Distance(prepared_query, ids[i]): batched gather-by-id scoring
  /// through the dispatched kernels (prefetched rows).
  void ScoreIds(const float* prepared_query, const uint32_t* ids, size_t count,
                float* out) const;

  /// out[i] = Distance(prepared_query, first_id + i) over `count` contiguous
  /// base rows: batched block scoring for brute-force scans.
  void ScoreRange(const float* prepared_query, uint32_t first_id, size_t count,
                  float* out) const;

 private:
  MatrixView base_;
  Metric metric_;
  const DistanceKernels* kernels_;
  std::vector<float> inv_norms_;  ///< cosine only: 1 / ||base row||
};

}  // namespace usp

#endif  // USP_DIST_DISTANCE_COMPUTER_H_
