// AVX2 + FMA kernel set. Compiled via per-function target attributes so the
// rest of the library keeps its baseline ISA; GetDistanceKernels() only hands
// this set out after __builtin_cpu_supports confirms avx2 and fma at runtime.
//
// Arithmetic contract (mirrored by distance_kernels_scalar.cc — keep in
// sync): one 8-lane FMA accumulator, element i -> lane i % 8, masked tail
// load contributing zero to the untouched lanes, reduction tree
// ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)).
#include "dist/distance_kernels.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

namespace usp {
namespace {

constexpr size_t kPrefetchAhead = 4;  // gather lookahead, in rows

// First `8 - offset` lanes active when loaded from kMaskTable + offset.
alignas(32) constexpr int32_t kMaskTable[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                                0,  0,  0,  0,  0,  0,  0,  0};

__attribute__((target("avx2,fma"))) inline __m256i TailMask(size_t rem) {
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMaskTable + 8 - rem));
}

__attribute__((target("avx2,fma"))) inline float Reduce8(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);          // [l0+l4, l1+l5, l2+l6, l3+l7]
  const __m128 half = _mm_movehl_ps(s, s);
  s = _mm_add_ps(s, half);                // [even, odd, ..]
  const __m128 odd = _mm_shuffle_ps(s, s, 0x55);
  return _mm_cvtss_f32(_mm_add_ss(s, odd));
}

__attribute__((target("avx2,fma"))) float SquaredL2Avx2(const float* x,
                                                        const float* y,
                                                        size_t d) {
  __m256 acc = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    const __m256 diff =
        _mm256_sub_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i));
    acc = _mm256_fmadd_ps(diff, diff, acc);
  }
  const size_t rem = d - i;
  if (rem > 0) {
    const __m256i mask = TailMask(rem);
    const __m256 diff = _mm256_sub_ps(_mm256_maskload_ps(x + i, mask),
                                      _mm256_maskload_ps(y + i, mask));
    acc = _mm256_fmadd_ps(diff, diff, acc);
  }
  return Reduce8(acc);
}

__attribute__((target("avx2,fma"))) float DotAvx2(const float* x,
                                                  const float* y, size_t d) {
  __m256 acc = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= d; i += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i), acc);
  }
  const size_t rem = d - i;
  if (rem > 0) {
    const __m256i mask = TailMask(rem);
    acc = _mm256_fmadd_ps(_mm256_maskload_ps(x + i, mask),
                          _mm256_maskload_ps(y + i, mask), acc);
  }
  return Reduce8(acc);
}

__attribute__((target("avx2,fma"))) inline void PrefetchRow(const float* row,
                                                            size_t d) {
  const size_t bytes = d * sizeof(float);
  __builtin_prefetch(row);
  if (bytes > 64) __builtin_prefetch(reinterpret_cast<const char*>(row) + 64);
}

__attribute__((target("avx2,fma"))) void ScoreBlockL2Avx2(const float* query,
                                                          const float* rows,
                                                          size_t count,
                                                          size_t d,
                                                          float* out) {
  for (size_t r = 0; r < count; ++r) {
    if (r + 1 < count) PrefetchRow(rows + (r + 1) * d, d);
    out[r] = SquaredL2Avx2(query, rows + r * d, d);
  }
}

__attribute__((target("avx2,fma"))) void ScoreBlockDotAvx2(const float* query,
                                                           const float* rows,
                                                           size_t count,
                                                           size_t d,
                                                           float* out) {
  for (size_t r = 0; r < count; ++r) {
    if (r + 1 < count) PrefetchRow(rows + (r + 1) * d, d);
    out[r] = DotAvx2(query, rows + r * d, d);
  }
}

__attribute__((target("avx2,fma"))) void ScoreIdsL2Avx2(
    const float* query, const float* base, size_t d, const uint32_t* ids,
    size_t count, float* out) {
  for (size_t i = 0; i < count; ++i) {
    if (i + kPrefetchAhead < count) {
      PrefetchRow(base + static_cast<size_t>(ids[i + kPrefetchAhead]) * d, d);
    }
    out[i] = SquaredL2Avx2(query, base + static_cast<size_t>(ids[i]) * d, d);
  }
}

__attribute__((target("avx2,fma"))) void ScoreIdsDotAvx2(
    const float* query, const float* base, size_t d, const uint32_t* ids,
    size_t count, float* out) {
  for (size_t i = 0; i < count; ++i) {
    if (i + kPrefetchAhead < count) {
      PrefetchRow(base + static_cast<size_t>(ids[i + kPrefetchAhead]) * d, d);
    }
    out[i] = DotAvx2(query, base + static_cast<size_t>(ids[i]) * d, d);
  }
}

__attribute__((target("avx2,fma"))) void AxpyAvx2(float alpha, const float* x,
                                                  float* y, size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 updated =
        _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i));
    _mm256_storeu_ps(y + i, updated);
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

bool CpuHasAvx2Fma() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

}  // namespace

const DistanceKernels* Avx2KernelsOrNull() {
  static const DistanceKernels kernels = {
      "avx2",           SquaredL2Avx2,   DotAvx2,
      ScoreBlockL2Avx2, ScoreBlockDotAvx2, ScoreIdsL2Avx2,
      ScoreIdsDotAvx2,  AxpyAvx2,
  };
  static const bool supported = CpuHasAvx2Fma();
  return supported ? &kernels : nullptr;
}

}  // namespace usp

#else  // non-x86: the scalar set is the only implementation.

namespace usp {
const DistanceKernels* Avx2KernelsOrNull() { return nullptr; }
}  // namespace usp

#endif
