#include "dist/quant_kernels.h"

#include "util/env.h"

namespace usp {

const QuantKernels& SelectQuantKernels(bool force_scalar) {
  if (!force_scalar) {
    if (const QuantKernels* avx2 = Avx2QuantKernelsOrNull()) return *avx2;
  }
  return ScalarQuantKernels();
}

const QuantKernels& GetQuantKernels() {
  static const QuantKernels& kernels =
      SelectQuantKernels(EnvInt("USP_FORCE_SCALAR", 0) != 0);
  return kernels;
}

}  // namespace usp
