#include "dist/distance_kernels.h"

#include "util/env.h"

namespace usp {

const DistanceKernels& SelectKernels(bool force_scalar) {
  if (!force_scalar) {
    if (const DistanceKernels* avx2 = Avx2KernelsOrNull()) return *avx2;
  }
  return ScalarKernels();
}

const DistanceKernels& GetDistanceKernels() {
  static const DistanceKernels& kernels =
      SelectKernels(EnvInt("USP_FORCE_SCALAR", 0) != 0);
  return kernels;
}

}  // namespace usp
