// Clustering demo (Sec. 5.5 / Table 5): uses the unsupervised space
// partitioner as a general clustering algorithm on the scikit-learn
// benchmark shapes and renders the labelings as ASCII scatter plots next to
// DBSCAN, K-means and spectral clustering.
//
//   $ ./build/examples/clustering_demo
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/kmeans.h"
#include "cluster/dbscan.h"
#include "cluster/metrics.h"
#include "cluster/spectral.h"
#include "core/partitioner.h"
#include "dataset/synthetic.h"
#include "knn/brute_force.h"

using namespace usp;

namespace {

void Render(const Matrix& points, const std::vector<uint32_t>& labels,
            const std::string& title, double ari) {
  constexpr int kWidth = 56, kHeight = 14;
  float min_x = 1e30f, max_x = -1e30f, min_y = 1e30f, max_y = -1e30f;
  for (size_t i = 0; i < points.rows(); ++i) {
    min_x = std::min(min_x, points(i, 0));
    max_x = std::max(max_x, points(i, 0));
    min_y = std::min(min_y, points(i, 1));
    max_y = std::max(max_y, points(i, 1));
  }
  std::vector<std::string> grid(kHeight, std::string(kWidth, ' '));
  const char glyphs[] = "o+x*#@%&";
  for (size_t i = 0; i < points.rows(); ++i) {
    const int cx = static_cast<int>((points(i, 0) - min_x) /
                                    (max_x - min_x + 1e-9f) * (kWidth - 1));
    const int cy = static_cast<int>((points(i, 1) - min_y) /
                                    (max_y - min_y + 1e-9f) * (kHeight - 1));
    grid[kHeight - 1 - cy][cx] = glyphs[labels[i] % 8];
  }
  std::printf("%s (ARI %.2f)\n", title.c_str(), ari);
  for (const auto& row : grid) std::printf("  %s\n", row.c_str());
}

void Demo(const std::string& name, const LabeledDataset& ds, size_t clusters,
          float dbscan_eps) {
  std::printf("\n================ %s ================\n", name.c_str());
  const Matrix& points = ds.points;

  const KnnResult knn = BuildKnnMatrix(points, 10);
  UspTrainConfig usp_config;
  usp_config.num_bins = clusters;
  usp_config.eta = 7.0f;
  usp_config.epochs = 60;
  usp_config.batch_size = 256;
  usp_config.hidden_dim = 64;
  usp_config.seed = 3;
  UspPartitioner usp(usp_config);
  usp.Train(points, knn);
  const auto usp_labels = usp.AssignBins(points);
  Render(points, usp_labels, "USP (ours)",
         AdjustedRandIndex(ds.labels, usp_labels));

  DbscanConfig db;
  db.epsilon = dbscan_eps;
  db.min_points = 5;
  const auto db_labels = DensifyLabels(RunDbscan(points, db).labels);
  Render(points, db_labels, "DBSCAN", AdjustedRandIndex(ds.labels, db_labels));

  KMeansConfig km;
  km.num_clusters = clusters;
  km.seed = 4;
  const auto km_labels = RunKMeans(points, km).assignments;
  Render(points, km_labels, "K-means",
         AdjustedRandIndex(ds.labels, km_labels));

  SpectralConfig sp;
  sp.num_clusters = clusters;
  sp.graph_neighbors = 10;
  sp.seed = 5;
  const auto sp_labels = RunSpectralClustering(points, sp);
  Render(points, sp_labels, "Spectral",
         AdjustedRandIndex(ds.labels, sp_labels));
}

}  // namespace

int main() {
  Demo("two moons", MakeMoons(700, 0.05f, 1), 2, 0.16f);
  Demo("concentric circles", MakeCircles(700, 0.03f, 0.45f, 2), 2, 0.15f);
  Demo("make_classification (4 classes)",
       MakeClassification(700, 2, 4, 5.0f, 3), 4, 0.9f);
  return 0;
}
