// Radius-search walkthrough: near-duplicate grouping over an image-like
// embedding set. Top-k search answers "the k closest, however far"; the
// dedupe workload wants the opposite — "everything within a similarity
// threshold, however many". RadiusSearch returns exactly that as
// variable-length CSR rows, so one pass over the collection groups every
// near-duplicate cluster without guessing k.
//
// The demo plants duplicate "re-uploads" (tiny perturbations of originals),
// picks the radius from the observed nearest-neighbor distance distribution,
// and groups with three configurations: an exhaustive scan, an IVF index at
// a partial probe budget, and a filtered query restricted to one "user".
//
// Build: cmake --build build --target radius_search
// Run:   ./build/examples/radius_search
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "usp.h"
#include "util/rng.h"

namespace {

// A collection with planted near-duplicates: every 10th vector gets two
// "re-uploads" at jitter ~1% of the typical feature scale.
usp::Matrix MakeCollection(size_t originals, size_t dim, uint64_t seed,
                           std::vector<uint32_t>* dup_of) {
  usp::Rng rng(seed);
  const usp::Matrix base = usp::Matrix::RandomGaussian(originals, dim, &rng);
  std::vector<float> rows;
  dup_of->clear();
  for (size_t i = 0; i < originals; ++i) {
    rows.insert(rows.end(), base.Row(i), base.Row(i) + dim);
    dup_of->push_back(static_cast<uint32_t>(dup_of->size()));
    if (i % 10 != 0) continue;
    const uint32_t original = dup_of->back();
    for (int copy = 0; copy < 2; ++copy) {
      for (size_t c = 0; c < dim; ++c) {
        rows.push_back(base.Row(i)[c] +
                       0.01f * static_cast<float>(rng.Gaussian()));
      }
      dup_of->push_back(original);
    }
  }
  const size_t count = rows.size() / dim;
  return usp::Matrix(count, dim, std::move(rows));
}

size_t TotalHits(const usp::RadiusResult& result) { return result.ids.size(); }

}  // namespace

int main() {
  const size_t dim = 64;
  std::vector<uint32_t> dup_of;  // ground truth: which original each row copies
  const usp::Matrix collection = MakeCollection(500, dim, /*seed=*/7, &dup_of);
  const size_t n = collection.rows();
  std::printf("collection: %zu vectors (%zu planted duplicates), d=%zu\n", n,
              n - 500, dim);

  // Pick the threshold from the data: duplicates sit far below the typical
  // nearest-neighbor distance, so any radius between the two modes works.
  // Here: halfway (geometrically) between the median 1-NN distance of
  // duplicate rows and of clean rows.
  const usp::KnnResult nn = usp::BuildKnnMatrix(collection, /*k=*/1);
  std::vector<float> dup_nn, clean_nn;
  for (size_t i = 0; i < n; ++i) {
    const bool is_dup = dup_of[i] != i || (i + 1 < n && dup_of[i + 1] == i);
    (is_dup ? dup_nn : clean_nn).push_back(nn.distances[i]);
  }
  std::sort(dup_nn.begin(), dup_nn.end());
  std::sort(clean_nn.begin(), clean_nn.end());
  const float radius = std::sqrt(dup_nn[dup_nn.size() / 2] *
                                 clean_nn[clean_nn.size() / 2]);
  std::printf("radius picked from 1-NN distances: %.4f (dup median %.4f, "
              "clean median %.4f)\n\n",
              radius, dup_nn[dup_nn.size() / 2],
              clean_nn[clean_nn.size() / 2]);

  // 1) Exhaustive grouping: query the collection against itself. Row i's
  // radius row is its duplicate group (plus itself at distance 0).
  const usp::RadiusResult exact =
      usp::BruteForceRadius(collection, collection, radius,
                            usp::Metric::kSquaredL2);
  size_t groups = 0, grouped_rows = 0;
  for (size_t i = 0; i < n; ++i) {
    if (exact.RowSize(i) > 1) {
      ++grouped_rows;
      // Count each group once, at its smallest member id. (Rows are sorted
      // by distance — the row's own id leads at distance 0 — so the group
      // representative is the minimum id in the row, not the first.)
      const uint32_t* ids = exact.RowIds(i);
      if (*std::min_element(ids, ids + exact.RowSize(i)) == i) ++groups;
    }
  }
  std::printf("brute force:  %zu rows in %zu duplicate groups (%zu hits "
              "total)\n",
              grouped_rows, groups, TotalHits(exact));

  // 2) The same query through an IVF index. At full budget the rows are
  // bit-identical to brute force; at a partial budget the scan is cheaper
  // and duplicates are still found because they share the query's bin.
  usp::IvfConfig config;
  config.nlist = 32;
  config.seed = 3;
  const usp::IvfFlatIndex ivf(&collection, config);
  usp::RadiusOptions options;
  options.budget = 4;  // probe 4 of 32 lists
  options.stats = true;
  const usp::RadiusResult approx =
      ivf.RadiusSearch(collection, radius, options);
  size_t scored = 0;
  for (size_t q = 0; q < n; ++q) scored += approx.stats->candidates_scored[q];
  std::printf("ivf nprobe=4: %zu hits, %.0f%% of pairs scored\n",
              TotalHits(approx),
              100.0 * static_cast<double>(scored) /
                  (static_cast<double>(n) * static_cast<double>(n)));

  // 3) Filtered: dedupe only within one "user's" uploads (ids 0 mod 3).
  usp::IdSelectorBitmap mine(n);
  for (uint32_t id = 0; id < n; id += 3) mine.Set(id);
  usp::RadiusOptions filtered;
  filtered.budget = 1u << 20;  // exhaustive
  filtered.filter = &mine;
  const usp::RadiusResult user_rows =
      ivf.RadiusSearch(collection, radius, filtered);
  std::printf("filtered:     %zu hits within the user's %zu uploads\n",
              TotalHits(user_rows), mine.count());

  // The full-budget filtered rows are bit-identical to filtered brute force.
  const usp::RadiusResult reference = usp::BruteForceRadius(
      collection, collection, radius, usp::Metric::kSquaredL2, &mine);
  const bool identical = user_rows.offsets == reference.offsets &&
                         user_rows.ids == reference.ids &&
                         user_rows.distances == reference.distances;
  std::printf("filtered rows match brute force bit-for-bit: %s\n",
              identical ? "yes" : "NO");
  return identical ? 0 : 1;
}
