// Image-retrieval scenario (the paper's motivating workload): a corpus of
// SIFT-like 128-d descriptors, out-of-sample query descriptors, and a
// latency budget expressed as a candidate-set size. Compares the unsupervised
// partition against K-means at matched candidate budgets, and demonstrates
// plugging a real dataset in via fvecs files.
//
//   $ ./build/examples/image_retrieval [base.fvecs query.fvecs]
#include <cstdio>

#include "baselines/kmeans.h"
#include "core/partition_index.h"
#include "core/partitioner.h"
#include "dataset/io.h"
#include "dataset/synthetic.h"
#include "dataset/workload.h"
#include "eval/sweep.h"

using namespace usp;

int main(int argc, char** argv) {
  // 1. Load the corpus: real fvecs files when given, synthetic otherwise.
  Workload w;
  if (argc == 3) {
    auto base = ReadFvecs(argv[1]);
    auto queries = ReadFvecs(argv[2]);
    if (!base.ok() || !queries.ok()) {
      std::fprintf(stderr, "failed to load fvecs: %s / %s\n",
                   base.status().ToString().c_str(),
                   queries.status().ToString().c_str());
      return 1;
    }
    w.name = argv[1];
    w.base = std::move(base).value();
    w.queries = std::move(queries).value();
    w.ground_truth = BruteForceKnn(w.base, w.queries, 10);
    w.knn_matrix = BuildKnnMatrix(w.base, 10);
  } else {
    WorkloadSpec spec;
    spec.kind = WorkloadKind::kSiftLike;
    spec.num_base = 6000;
    spec.num_queries = 300;
    spec.gt_k = 10;
    spec.knn_k = 10;
    spec.seed = 9;
    std::printf("no fvecs given; generating a synthetic descriptor corpus "
                "(n=%zu, d=128)\n",
                spec.num_base);
    w = MakeWorkload(spec);
  }

  // 2. Index the corpus two ways: learned partition vs. K-means.
  constexpr size_t kBins = 16;
  UspTrainConfig config;
  config.num_bins = kBins;
  config.eta = 7.0f;
  config.epochs = 20;
  config.batch_size = 512;
  UspPartitioner usp(config);
  usp.Train(w.base, w.knn_matrix);
  PartitionIndex usp_index(&w.base, &usp);

  KMeansConfig km_config;
  km_config.num_clusters = kBins;
  km_config.seed = 2;
  KMeansPartitioner kmeans(w.base, km_config);
  PartitionIndex km_index(&w.base, &kmeans);

  // 3. Compare: how many descriptors must each index scan for a given
  //    recall target? (That scan is the query-latency driver.)
  auto sweep_request = [&](size_t p) {
    SearchRequest request;
    request.queries = w.queries;
    request.options.k = 10;
    request.options.budget = p;
    return request;
  };
  auto usp_curve = ProbeSweep(
      [&](size_t p) { return usp_index.SearchBatch(sweep_request(p)); },
      DefaultProbeCounts(kBins), w.ground_truth.indices, w.ground_truth.k);
  auto km_curve = ProbeSweep(
      [&](size_t p) { return km_index.SearchBatch(sweep_request(p)); },
      DefaultProbeCounts(kBins), w.ground_truth.indices, w.ground_truth.k);

  std::printf("\n%35s\n", "descriptors scanned per query");
  std::printf("%12s %14s %14s\n", "recall@10", "USP (ours)", "K-means");
  for (double target : {0.80, 0.85, 0.90, 0.95}) {
    const double usp_c = CandidatesAtAccuracy(usp_curve, target);
    const double km_c = CandidatesAtAccuracy(km_curve, target);
    std::printf("%11.0f%% %14.0f %14.0f\n", 100 * target, usp_c, km_c);
  }

  // 4. Show one retrieval end to end, with per-query stats.
  SearchRequest request;
  request.queries = w.queries;
  request.options.k = 5;
  request.options.budget = 2;
  request.options.stats = true;
  const BatchSearchResult result = usp_index.SearchBatch(request);
  std::printf("\nquery 0 -> top-5 descriptor ids:");
  for (size_t j = 0; j < 5; ++j) std::printf(" %u", result.Row(0)[j]);
  std::printf("  (scanned %u of %zu descriptors in %u bins)\n",
              result.candidate_counts[0], w.base.rows(),
              result.stats->bins_probed[0]);

  // 5. Filtered retrieval: restrict query 0 to the first half of the corpus
  //    (e.g. only descriptors from an allowed shard) — the selector is pushed
  //    into the scan, not applied to a truncated result.
  const IdSelectorRange first_half(0, static_cast<uint32_t>(w.base.rows() / 2));
  request.options.filter = &first_half;
  const BatchSearchResult filtered = usp_index.SearchBatch(request);
  std::printf("filtered to ids [0, %zu) -> top-5:", w.base.rows() / 2);
  for (size_t j = 0; j < 5; ++j) std::printf(" %u", filtered.Row(0)[j]);
  std::printf("  (%u candidates filtered out)\n",
              filtered.stats->filtered_out[0]);
  return 0;
}
