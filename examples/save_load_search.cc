// Train-once / serve-many walkthrough: build three index types over one
// synthetic workload, persist each to the versioned container format, reopen
// them through the OpenIndex factory (both the streaming and the zero-copy
// mmap loader), and verify the reopened indexes reproduce the in-memory
// search results exactly. This is the end-to-end smoke CI runs for the
// serialization subsystem; see docs/FORMAT.md for the byte layout.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "usp.h"
#include "util/env.h"

namespace {

// The request every round-trip check runs (k neighbors at `budget` effort).
usp::SearchRequest MakeRequest(const usp::Workload& w, size_t k,
                               size_t budget) {
  usp::SearchRequest request;
  request.queries = w.queries;
  request.options.k = k;
  request.options.budget = budget;
  return request;
}

// Searches `index` and returns recall@k against the workload ground truth.
double Recall(const usp::Index& index, const usp::Workload& w, size_t k,
              size_t budget) {
  const usp::BatchSearchResult result =
      index.SearchBatch(MakeRequest(w, k, budget));
  return usp::KnnAccuracy(result, w.ground_truth.indices, w.ground_truth.k);
}

// Saves, reopens in both modes, and checks search parity with the original.
bool RoundTrip(const usp::Index& index, const usp::Workload& w, size_t k,
               size_t budget, const std::string& path) {
  usp::Status status = usp::SaveIndex(index, path);
  if (!status.ok()) {
    std::fprintf(stderr, "save %s: %s\n", path.c_str(),
                 status.ToString().c_str());
    return false;
  }

  const usp::SearchRequest request = MakeRequest(w, k, budget);
  const usp::BatchSearchResult expected = index.SearchBatch(request);
  for (const usp::LoadMode mode :
       {usp::LoadMode::kHeap, usp::LoadMode::kMmap}) {
    auto reopened = usp::OpenIndex(path, mode);
    if (!reopened.ok()) {
      std::fprintf(stderr, "open %s: %s\n", path.c_str(),
                   reopened.status().ToString().c_str());
      return false;
    }
    const usp::Index& loaded = *reopened.value();
    const usp::BatchSearchResult got = loaded.SearchBatch(request);
    if (got.ids != expected.ids) {
      std::fprintf(stderr, "%s: %s reload changed search results\n",
                   path.c_str(),
                   mode == usp::LoadMode::kMmap ? "mmap" : "heap");
      return false;
    }
    std::printf("  %-6s %-12s n=%zu d=%zu recall@%zu=%.3f\n",
                mode == usp::LoadMode::kMmap ? "mmap" : "heap",
                usp::IndexTypeName(loaded.type()), loaded.size(), loaded.dim(),
                k, Recall(loaded, w, k, budget));
  }
  std::remove(path.c_str());
  return true;
}

}  // namespace

int main() {
  usp::WorkloadSpec spec;
  spec.kind = usp::WorkloadKind::kGaussian;
  spec.num_base = static_cast<size_t>(usp::EnvInt("USP_NUM_BASE", 2000));
  spec.num_queries = 100;
  spec.gt_k = 10;
  spec.knn_k = 8;
  const usp::Workload w = usp::MakeWorkload(spec);
  const std::string dir = usp::EnvString("TMPDIR", "/tmp");
  const size_t k = 10;
  bool ok = true;

  // 1. The paper's index: a trained USP partition behind PartitionIndex.
  std::printf("PartitionIndex + UspPartitioner:\n");
  usp::UspTrainConfig train;
  train.num_bins = 16;
  train.epochs = 15;
  train.hidden_dim = 32;
  usp::UspPartitioner partitioner(train);
  partitioner.Train(w.base, w.knn_matrix);
  usp::PartitionIndex partition_index(&w.base, &partitioner);
  ok = RoundTrip(partition_index, w, k, 4, dir + "/usp_partition.uspidx") && ok;

  // 2. IVF-Flat baseline.
  std::printf("IvfFlatIndex:\n");
  usp::IvfConfig ivf;
  ivf.nlist = 32;
  usp::IvfFlatIndex ivf_flat(&w.base, ivf);
  ok = RoundTrip(ivf_flat, w, k, 6, dir + "/ivf_flat.uspidx") && ok;

  // 3. HNSW graph baseline (budget = ef_search).
  std::printf("HnswIndex:\n");
  usp::HnswConfig hnsw_config;
  hnsw_config.max_neighbors = 12;
  usp::HnswIndex hnsw(hnsw_config);
  hnsw.Build(w.base);
  ok = RoundTrip(hnsw, w, k, 60, dir + "/hnsw.uspidx") && ok;

  if (!ok) return EXIT_FAILURE;
  std::printf("all round trips bit-identical\n");
  return EXIT_SUCCESS;
}
