// Ensembling and hierarchical partitioning (Sec. 4.4): shows how ensemble
// size e trades training time for recall (Alg. 3/4), what the AdaBoost-style
// weights converge to, and how a hierarchical 8x8 tree compares with a flat
// 64-bin model at equal bin count.
//
//   $ ./build/examples/ensemble_tuning
#include <algorithm>
#include <cstdio>

#include "core/ensemble.h"
#include "core/hierarchical.h"
#include "core/partition_index.h"
#include "dataset/workload.h"
#include "util/timer.h"

using namespace usp;

int main() {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kSiftLike;
  spec.num_base = 5000;
  spec.num_queries = 250;
  spec.gt_k = 10;
  spec.knn_k = 10;
  spec.seed = 23;
  std::printf("building workload (n=%zu, d=128)...\n", spec.num_base);
  Workload w = MakeWorkload(spec);

  UspTrainConfig model_config;
  model_config.num_bins = 16;
  model_config.eta = 7.0f;
  model_config.epochs = 18;
  model_config.batch_size = 512;
  model_config.seed = 29;

  // --- Ensemble size sweep ---
  std::printf("\nensemble size sweep (16 bins, 1 probe):\n");
  std::printf("  %4s %12s %12s %12s\n", "e", "train(s)", "acc@1probe",
              "mean|C|");
  for (size_t e : {1, 2, 3, 4}) {
    UspEnsembleConfig config;
    config.model = model_config;
    config.num_models = e;
    UspEnsemble ensemble(config);
    WallTimer timer;
    ensemble.Train(w.base, w.knn_matrix);
    const double train_seconds = timer.ElapsedSeconds();
    SearchRequest request;
    request.queries = w.queries;
    request.options.k = 10;
    request.options.budget = 1;
    const auto result = ensemble.SearchBatch(request);
    std::printf("  %4zu %12.1f %12.4f %12.1f\n", e, train_seconds,
                KnnAccuracy(result, w.ground_truth.indices, w.ground_truth.k),
                result.MeanCandidates());
    if (e == 4) {
      const auto& weights = ensemble.final_weights();
      const auto [mn, mx] = std::minmax_element(weights.begin(), weights.end());
      size_t heavy = 0;
      for (float weight : weights) {
        if (weight > 2.0f) ++heavy;
      }
      std::printf(
          "  final boosting weights: min %.3f, max %.2f; %zu/%zu points "
          "weighted >2x\n",
          *mn, *mx, heavy, weights.size());
    }
  }

  // --- Flat vs hierarchical at 64 bins ---
  std::printf("\nflat 64 bins vs hierarchical 8x8 (equal bin count):\n");
  {
    UspTrainConfig flat_config = model_config;
    flat_config.num_bins = 64;
    flat_config.eta = 10.0f;
    UspPartitioner flat(flat_config);
    WallTimer timer;
    flat.Train(w.base, w.knn_matrix);
    const double train_seconds = timer.ElapsedSeconds();
    PartitionIndex index(&w.base, &flat);
    SearchRequest request;
    request.queries = w.queries;
    request.options.k = 10;
    request.options.budget = 4;
    const auto result = index.SearchBatch(request);
    std::printf("  %-14s train %6.1fs params %7zu  acc@4probes %.4f  "
                "mean|C| %.0f\n",
                "flat-64", train_seconds, flat.ParameterCount(),
                KnnAccuracy(result, w.ground_truth.indices, w.ground_truth.k),
                result.MeanCandidates());
  }
  {
    HierarchicalConfig tree_config;
    tree_config.fanouts = {8, 8};
    tree_config.model = model_config;
    tree_config.model.num_bins = 8;
    HierarchicalUspPartitioner tree(tree_config);
    WallTimer timer;
    tree.Train(w.base, w.knn_matrix);
    const double train_seconds = timer.ElapsedSeconds();
    PartitionIndex index(&w.base, &tree);
    SearchRequest request;
    request.queries = w.queries;
    request.options.k = 10;
    request.options.budget = 4;
    const auto result = index.SearchBatch(request);
    std::printf("  %-14s train %6.1fs params %7zu  acc@4probes %.4f  "
                "mean|C| %.0f  (%zu small models)\n",
                "tree-8x8", train_seconds, tree.ParameterCount(),
                KnnAccuracy(result, w.ground_truth.indices, w.ground_truth.k),
                result.MeanCandidates(), tree.NumModels());
  }
  return 0;
}
