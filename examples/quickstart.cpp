// Quickstart: train an unsupervised space partition on a synthetic workload,
// build the index, and answer 10-NN queries at several probe counts.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/partition_index.h"
#include "core/partitioner.h"
#include "dataset/workload.h"
#include "util/timer.h"

int main() {
  using namespace usp;

  // 1. A workload: base points, held-out queries, exact ground truth and the
  //    k'-NN matrix (the offline phase's only preprocessing step).
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kSiftLike;
  spec.num_base = 4000;
  spec.num_queries = 200;
  spec.gt_k = 10;   // evaluate 10-NN accuracy
  spec.knn_k = 10;  // k' used by the loss
  spec.seed = 1;
  std::printf("building workload (n=%zu, d=128)...\n", spec.num_base);
  Workload w = MakeWorkload(spec);

  // 2. Train the unsupervised partitioner (Algorithm 1).
  UspTrainConfig config;
  config.num_bins = 16;
  config.eta = 7.0f;  // paper's value for 16 bins
  config.epochs = 20;
  config.batch_size = 512;
  UspPartitioner partitioner(config);
  WallTimer timer;
  partitioner.Train(w.base, w.knn_matrix);
  std::printf("trained %zu-bin model (%zu parameters) in %.1fs\n",
              config.num_bins, partitioner.ParameterCount(),
              timer.ElapsedSeconds());

  // 3. Build the index (lookup table) and answer queries (Algorithm 2)
  //    through the structured query API: a SearchRequest carries the query
  //    view plus SearchOptions{k, budget, num_threads, filter, stats}.
  PartitionIndex index(&w.base, &partitioner);
  SearchRequest request;
  request.queries = w.queries;
  request.options.k = 10;
  std::printf("\n%8s  %12s  %10s\n", "probes", "mean|C|", "10NN-acc");
  for (size_t probes : {1, 2, 4, 8}) {
    request.options.budget = probes;
    const BatchSearchResult result = index.SearchBatch(request);
    const double accuracy =
        KnnAccuracy(result, w.ground_truth.indices, w.ground_truth.k);
    std::printf("%8zu  %12.1f  %10.4f\n", probes, result.MeanCandidates(),
                accuracy);
  }

  // 4. Predicate-filtered search: only ids the selector admits may be
  //    returned. The filter is pushed into the candidate scan, so the result
  //    is exact over the allowed subset — not a truncated unfiltered list.
  const IdSelectorRange recent(0, static_cast<uint32_t>(w.base.rows() / 4));
  request.options.budget = 8;
  request.options.filter = &recent;
  request.options.stats = true;
  const BatchSearchResult filtered = index.SearchBatch(request);
  std::printf("\nfiltered to ids [0, %zu): query 0 scored %u candidates "
              "(%u filtered out)\n",
              w.base.rows() / 4, filtered.candidate_counts[0],
              filtered.stats->filtered_out[0]);
  return 0;
}
