// Quickstart: train an unsupervised space partition on a synthetic workload,
// build the index, and answer 10-NN queries at several probe counts.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/partition_index.h"
#include "core/partitioner.h"
#include "dataset/workload.h"
#include "util/timer.h"

int main() {
  using namespace usp;

  // 1. A workload: base points, held-out queries, exact ground truth and the
  //    k'-NN matrix (the offline phase's only preprocessing step).
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kSiftLike;
  spec.num_base = 4000;
  spec.num_queries = 200;
  spec.gt_k = 10;   // evaluate 10-NN accuracy
  spec.knn_k = 10;  // k' used by the loss
  spec.seed = 1;
  std::printf("building workload (n=%zu, d=128)...\n", spec.num_base);
  Workload w = MakeWorkload(spec);

  // 2. Train the unsupervised partitioner (Algorithm 1).
  UspTrainConfig config;
  config.num_bins = 16;
  config.eta = 7.0f;  // paper's value for 16 bins
  config.epochs = 20;
  config.batch_size = 512;
  UspPartitioner partitioner(config);
  WallTimer timer;
  partitioner.Train(w.base, w.knn_matrix);
  std::printf("trained %zu-bin model (%zu parameters) in %.1fs\n",
              config.num_bins, partitioner.ParameterCount(),
              timer.ElapsedSeconds());

  // 3. Build the index (lookup table) and answer queries (Algorithm 2).
  PartitionIndex index(&w.base, &partitioner);
  std::printf("\n%8s  %12s  %10s\n", "probes", "mean|C|", "10NN-acc");
  for (size_t probes : {1, 2, 4, 8}) {
    const BatchSearchResult result = index.SearchBatch(w.queries, 10, probes);
    const double accuracy =
        KnnAccuracy(result, w.ground_truth.indices, w.ground_truth.k);
    std::printf("%8zu  %12.1f  %10.4f\n", probes, result.MeanCandidates(),
                accuracy);
  }
  return 0;
}
