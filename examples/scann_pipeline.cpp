// End-to-end "USP + ScaNN" pipeline (Sec. 5.4.3): learned space partition for
// candidate generation, anisotropic product quantization for fast approximate
// scoring inside the candidate set, exact re-ranking on the shortlist.
// Reports accuracy and throughput for the full pipeline against K-means
// coarse partitioning at the same settings.
//
//   $ ./build/examples/scann_pipeline
#include <cstdio>

#include "baselines/kmeans.h"
#include "core/partitioner.h"
#include "dataset/workload.h"
#include "quant/pq.h"
#include "quant/scann_index.h"
#include "util/timer.h"

using namespace usp;

namespace {

ProductQuantizer TrainQuantizer(const Matrix& base) {
  PqConfig config;
  config.num_subspaces = 8;
  config.codebook_size = 16;
  config.anisotropic_eta = 4.0f;  // ScaNN's score-aware weighting
  config.seed = 7;
  ProductQuantizer pq(config);
  pq.Train(base);
  return pq;
}

void Evaluate(const char* name, const ScannIndex& index, const Workload& w,
              size_t probes) {
  SearchRequest request;
  request.queries = w.queries;
  request.options.k = 10;
  request.options.budget = probes;
  index.SearchBatch(request);  // warm-up
  WallTimer timer;
  const BatchSearchResult result = index.SearchBatch(request);
  const double seconds = timer.ElapsedSeconds();
  std::printf("  %-20s probes=%-3zu acc=%.4f  qps=%8.1f  mean|C|=%8.1f\n",
              name, probes,
              KnnAccuracy(result, w.ground_truth.indices, w.ground_truth.k),
              w.queries.rows() / seconds, result.MeanCandidates());
}

}  // namespace

int main() {
  WorkloadSpec spec;
  spec.kind = WorkloadKind::kSiftLike;
  spec.num_base = 6000;
  spec.num_queries = 300;
  spec.gt_k = 10;
  spec.knn_k = 10;
  spec.seed = 17;
  std::printf("building workload (n=%zu, d=128)...\n", spec.num_base);
  Workload w = MakeWorkload(spec);

  constexpr size_t kBins = 32;

  std::printf("training USP partition (%zu bins)...\n", kBins);
  UspTrainConfig usp_config;
  usp_config.num_bins = kBins;
  usp_config.eta = 10.0f;
  usp_config.epochs = 20;
  usp_config.batch_size = 512;
  UspPartitioner usp(usp_config);
  usp.Train(w.base, w.knn_matrix);

  std::printf("training K-means partition (%zu bins)...\n", kBins);
  KMeansConfig km_config;
  km_config.num_clusters = kBins;
  km_config.seed = 3;
  KMeansPartitioner kmeans(w.base, km_config);

  ScannIndexConfig index_config;
  index_config.rerank_budget = 100;
  const ScannIndex usp_scann(&w.base, &usp, TrainQuantizer(w.base),
                             index_config);
  const ScannIndex km_scann(&w.base, &kmeans, TrainQuantizer(w.base),
                            index_config);
  const ScannIndex vanilla(&w.base, nullptr, TrainQuantizer(w.base),
                           index_config);

  std::printf("\npipeline comparison (10-NN):\n");
  for (size_t probes : {2, 4, 8}) {
    Evaluate("USP + ScaNN", usp_scann, w, probes);
    Evaluate("K-means + ScaNN", km_scann, w, probes);
  }
  Evaluate("ScaNN (full scan)", vanilla, w, 1);
  return 0;
}
